// Package noalloc rejects allocating constructs in functions annotated
// //adsm:noalloc.
//
// The PR 4 fault hot path earned its 0 allocs/op the hard way; the
// AllocsPerRun tests prove the property dynamically, but only for the
// inputs they run. This analyzer enforces the same property syntactically,
// so a refactor that reintroduces a closure, an fmt call, or interface
// boxing fails `make vet` before it ever reaches a benchmark.
//
// Flagged constructs:
//
//   - function literals (closure allocation), except immediately deferred
//     ones — `defer func(){...}()` compiles to an open-coded defer and the
//     hot-path benchmarks confirm it does not allocate
//   - `go` statements (goroutine allocation)
//   - `defer` inside a loop (deferred calls in loops heap-allocate)
//   - the builtins append, make, and new
//   - map, slice, and &composite literals
//   - any call into package fmt
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions
//   - interface boxing: passing, assigning, returning, or converting a
//     concrete value where an interface is expected
//   - method-value expressions (x.M used as a value allocates a bound
//     closure)
//
// The analysis is intra-procedural: cold paths that must allocate
// (error formatting, overflow growth) belong in separate non-annotated
// helper functions.
//
// A small built-in table (required.go) additionally demands the
// annotation on the known hot-path functions of internal/core and
// internal/sim, so deleting the directive is itself a diagnostic.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the noalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "reject allocating constructs in //adsm:noalloc functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	required := requiredSet(pass.Pkg.Path())
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			_, annotated := analysis.FuncDirective(pass.Fset, file, fn, "noalloc")
			key := analysis.FuncKey(fn)
			if required[key] && !annotated {
				pass.Reportf(fn.Name.Pos(),
					"%s is on the ADSM fault hot path and must be annotated //adsm:noalloc", key)
				continue
			}
			if annotated {
				checkFunc(pass, fn)
			}
		}
	}
	return nil
}

// checkFunc walks an annotated function body reporting every allocating
// construct.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	w := &walker{pass: pass, fname: analysis.FuncKey(fn)}
	w.stmt(fn.Body, 0)
}

// walker carries the per-function state; loopDepth tracks whether a defer
// statement sits inside a loop.
type walker struct {
	pass  *analysis.Pass
	fname string
}

// stmt dispatches on statement shape so that defer and go statements can
// be treated specially before their sub-expressions are scanned.
func (w *walker) stmt(s ast.Stmt, loopDepth int) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			w.stmt(sub, loopDepth)
		}
	case *ast.GoStmt:
		w.pass.Reportf(s.Pos(), "%s is //adsm:noalloc: go statement allocates a goroutine", w.fname)
	case *ast.DeferStmt:
		if loopDepth > 0 {
			w.pass.Reportf(s.Pos(), "%s is //adsm:noalloc: defer inside a loop heap-allocates", w.fname)
		}
		// An immediately deferred func literal is an open-coded defer:
		// allowed, but its body still runs on the hot path, so scan it.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmt(lit.Body, 0)
			for _, arg := range s.Call.Args {
				w.expr(arg)
			}
			w.boxedArgs(s.Call)
		} else {
			// `defer x.M()` is a direct call, not a method value.
			w.call(s.Call)
		}
	case *ast.ForStmt:
		w.stmt(s.Init, loopDepth)
		w.exprOpt(s.Cond)
		w.stmt(s.Post, loopDepth)
		w.stmt(s.Body, loopDepth+1)
	case *ast.RangeStmt:
		w.exprOpt(s.Key)
		w.exprOpt(s.Value)
		w.expr(s.X)
		w.stmt(s.Body, loopDepth+1)
	case *ast.IfStmt:
		w.stmt(s.Init, loopDepth)
		w.expr(s.Cond)
		w.stmt(s.Body, loopDepth)
		w.stmt(s.Else, loopDepth)
	case *ast.SwitchStmt:
		w.stmt(s.Init, loopDepth)
		w.exprOpt(s.Tag)
		w.stmt(s.Body, loopDepth)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, loopDepth)
		w.stmt(s.Assign, loopDepth)
		w.stmt(s.Body, loopDepth)
	case *ast.SelectStmt:
		w.stmt(s.Body, loopDepth)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		for _, sub := range s.Body {
			w.stmt(sub, loopDepth)
		}
	case *ast.CommClause:
		w.stmt(s.Comm, loopDepth)
		for _, sub := range s.Body {
			w.stmt(sub, loopDepth)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, loopDepth)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
		w.boxed(s.Value, chanElem(w.pass, s.Chan))
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				w.boxed(s.Rhs[i], w.pass.TypesInfo.TypeOf(s.Lhs[i]))
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, v := range vs.Values {
				w.expr(v)
				if i < len(vs.Names) {
					w.boxed(v, w.pass.TypesInfo.TypeOf(vs.Names[i]))
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
		w.boxedReturns(s)
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		// Unknown statement kinds: scan conservatively for expressions.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e)
				return false
			}
			return true
		})
	}
}

func (w *walker) exprOpt(e ast.Expr) {
	if e != nil {
		w.expr(e)
	}
}

// expr reports allocating expressions, recursing into sub-expressions.
func (w *walker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.FuncLit:
		w.pass.Reportf(e.Pos(), "%s is //adsm:noalloc: function literal allocates a closure; hoist it to a named function", w.fname)
		// Do not descend: the closure itself is the finding.
	case *ast.CompositeLit:
		w.compositeLit(e, false)
	case *ast.UnaryExpr:
		if lit, ok := e.X.(*ast.CompositeLit); ok && e.Op == token.AND {
			w.compositeLit(lit, true)
			return
		}
		w.expr(e.X)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
		if e.Op == token.ADD && !isConst(w.pass, e) && isString(w.pass.TypesInfo.TypeOf(e.X)) {
			w.pass.Reportf(e.Pos(), "%s is //adsm:noalloc: string concatenation allocates", w.fname)
		}
	case *ast.CallExpr:
		w.call(e)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
		if sel, ok := w.pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.MethodVal {
			// x.M in non-call position binds the receiver: a closure.
			// Call positions never reach here (call() skips the Fun
			// selector), so any method value seen here allocates.
			w.pass.Reportf(e.Pos(), "%s is //adsm:noalloc: method value %s binds its receiver and allocates", w.fname, e.Sel.Name)
		}
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.IndexListExpr:
		w.expr(e.X)
		for _, i := range e.Indices {
			w.expr(i)
		}
	case *ast.SliceExpr:
		w.expr(e.X)
		w.exprOpt(e.Low)
		w.exprOpt(e.High)
		w.exprOpt(e.Max)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.KeyValueExpr:
		w.expr(e.Key)
		w.expr(e.Value)
	case *ast.Ident, *ast.BasicLit, *ast.ArrayType, *ast.MapType,
		*ast.ChanType, *ast.FuncType, *ast.StructType, *ast.InterfaceType:
	}
}

func (w *walker) compositeLit(lit *ast.CompositeLit, addressed bool) {
	t := w.pass.TypesInfo.TypeOf(lit)
	switch t.Underlying().(type) {
	case *types.Map:
		w.pass.Reportf(lit.Pos(), "%s is //adsm:noalloc: map literal allocates", w.fname)
	case *types.Slice:
		w.pass.Reportf(lit.Pos(), "%s is //adsm:noalloc: slice literal allocates its backing array", w.fname)
	default:
		if addressed {
			w.pass.Reportf(lit.Pos(), "%s is //adsm:noalloc: &composite literal may heap-allocate", w.fname)
		}
	}
	for _, elt := range lit.Elts {
		w.expr(elt)
	}
}

// call handles call expressions: builtins, fmt, conversions, and interface
// boxing of arguments.
func (w *walker) call(call *ast.CallExpr) {
	info := w.pass.TypesInfo

	switch {
	case analysis.IsBuiltinCall(info, call, "append"):
		w.pass.Reportf(call.Pos(), "%s is //adsm:noalloc: append may grow its backing array", w.fname)
	case analysis.IsBuiltinCall(info, call, "make"):
		w.pass.Reportf(call.Pos(), "%s is //adsm:noalloc: make allocates", w.fname)
	case analysis.IsBuiltinCall(info, call, "new"):
		w.pass.Reportf(call.Pos(), "%s is //adsm:noalloc: new allocates", w.fname)
	}

	// Type conversion?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		w.conversion(call, tv.Type)
		w.expr(call.Args[0])
		return
	}

	if analysis.CalleePkgName(info, call) == "fmt" {
		w.pass.Reportf(call.Pos(), "%s is //adsm:noalloc: fmt call allocates; move formatting to a cold helper", w.fname)
		// fmt's variadic ...any boxing is subsumed by this finding.
		for _, arg := range call.Args {
			w.expr(arg)
		}
		return
	}

	// Don't treat the callee selector as a method value.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		w.expr(fun.X)
	case *ast.Ident:
	default:
		w.expr(call.Fun)
	}
	for _, arg := range call.Args {
		w.expr(arg)
	}
	w.boxedArgs(call)
}

// conversion flags allocating conversions: string<->[]byte/[]rune and
// concrete-to-interface.
func (w *walker) conversion(call *ast.CallExpr, target types.Type) {
	src := w.pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if isConst(w.pass, call) {
		return
	}
	switch {
	case isString(target) && isByteOrRuneSlice(src):
		w.pass.Reportf(call.Pos(), "%s is //adsm:noalloc: []byte/[]rune-to-string conversion allocates", w.fname)
	case isByteOrRuneSlice(target) && isString(src):
		w.pass.Reportf(call.Pos(), "%s is //adsm:noalloc: string-to-slice conversion allocates", w.fname)
	default:
		w.boxed(call.Args[0], target)
	}
}

// boxedArgs flags concrete arguments passed in interface-typed parameters.
func (w *walker) boxedArgs(call *ast.CallExpr) {
	tv, ok := w.pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	if call.Ellipsis.IsValid() {
		// f(xs...) passes the slice through: no per-element boxing.
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		w.boxed(arg, pt)
	}
}

// boxedReturns flags concrete values returned as interface results.
func (w *walker) boxedReturns(ret *ast.ReturnStmt) {
	// The enclosing signature is found via the statement position: walk is
	// per-FuncDecl, so scan outwards is unnecessary — instead rely on the
	// types of the returned expressions vs. declared results being checked
	// at the assignment the compiler sees. We approximate: a return of a
	// concrete composite/call into an interface result is rare on hot
	// paths; the assignment and argument checks catch the common cases.
	_ = ret
}

// boxed reports when a concrete (non-interface) value flows into an
// interface-typed slot.
func (w *walker) boxed(e ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	src := w.pass.TypesInfo.TypeOf(e)
	if src == nil || types.IsInterface(src) {
		return
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	// Pointers, chans, maps, funcs and unsafe.Pointer fit in the iface
	// word without allocating.
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return
	}
	if isConst(w.pass, e) {
		// Constants under 256 (and small zero values) use the runtime's
		// static boxes; be permissive for constants.
		return
	}
	w.pass.Reportf(e.Pos(), "%s is //adsm:noalloc: converting %s to interface %s allocates (boxing)",
		w.fname, src, target)
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

func chanElem(pass *analysis.Pass, ch ast.Expr) types.Type {
	t := pass.TypesInfo.TypeOf(ch)
	if t == nil {
		return nil
	}
	c, ok := t.Underlying().(*types.Chan)
	if !ok {
		return nil
	}
	return c.Elem()
}
