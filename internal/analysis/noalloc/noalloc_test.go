package noalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noalloc"
)

func TestBasic(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, "noalloc/basic")
}

func TestRequiredAnnotations(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, "noalloc/required")
}
