package noalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noalloc"
)

func TestBasic(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, "noalloc/basic")
}

func TestRequiredAnnotations(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, "noalloc/required")
}

func TestChain(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, "noalloc/chain")
}

// TestRecursive doubles as the fixpoint-termination test: the fixture's
// mutually recursive SCCs must converge for the run to finish at all.
func TestRecursive(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, "noalloc/recursive")
}

func TestRequiredGone(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, "noalloc/requiredgone")
}
