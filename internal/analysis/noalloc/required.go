package noalloc

import "strings"

// requiredAnnotations lists, per package, the functions that constitute the
// ADSM fault hot path (the 0 allocs/op property measured by the
// AllocsPerRun tests in internal/core and internal/sim). These must carry
// the //adsm:noalloc directive: removing the annotation — not just
// violating it — is a diagnostic, so the static and dynamic checks can
// never silently name different function sets.
var requiredAnnotations = map[string][]string{
	"repro/internal/core": {
		"(*Manager).handleFault",
		"(*Manager).blockAt",
		"(*Manager).objectAt",
		"(*Manager).fetchBlockSync",
		"(*Manager).fetchRunSync",
		"(*Manager).faultRunLen",
		"(*Manager).setProt",
		"(*Manager).setProtRun",
		"(*registry).objectAt",
		"(*registry).blockAt",
		"regShardOf",
		"(*spanIndex).search",
		"(*indexSnapshot).find",
		"(*rollingCache).push",
		"resolveFault",
		"(*Manager).record",
	},
	"repro/internal/sim": {
		"(*Breakdown).Add",
	},
	"repro/internal/oplog": {
		"(*Ring).Record",
	},
}

// requiredSet returns the required-annotation set for the package path.
// Testdata packages can exercise the table through the "noalloc/required"
// suffix used by the golden tests; the "noalloc/requiredgone" suffix
// additionally lists a function that is never declared, exercising the
// vanished-entry diagnostic.
func requiredSet(pkgPath string) map[string]bool {
	keys, ok := requiredAnnotations[pkgPath]
	if !ok {
		switch {
		case strings.HasSuffix(pkgPath, "noalloc/requiredgone"):
			keys = []string{"hotRequired", "vanishedHelper"}
		case strings.HasSuffix(pkgPath, "noalloc/required"):
			keys = []string{"hotRequired"}
		}
	}
	set := make(map[string]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	return set
}
