// Package statecase enforces exhaustive switches over the ADSM protocol
// state enums.
//
// The coherence protocols (batch, lazy, rolling) are transition functions
// over a small block-state machine: Invalid -> ReadOnly -> Dirty (Gelado
// et al., ASPLOS 2010, §5.2). Adding a state is a protocol change that
// must be confronted at every transition site; this analyzer makes the
// compiler-silent omission loud by requiring every `switch` whose tag is
// an enum type to either list every declared constant of that type or
// carry an explicit default.
//
// Enum types are declared in one of two ways:
//
//   - a type declaration annotated //adsm:statecase in the package being
//     analyzed, or
//   - membership in the built-in registry (KnownEnums), which names the
//     internal/core enums so that switches in *importing* packages are
//     checked too.
//
// Exhaustiveness is by constant value: two names for the same value count
// as one case.
package statecase

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the statecase analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "statecase",
	Doc:  "require switches over //adsm:statecase enums to be exhaustive or have a default",
	Run:  run,
}

// KnownEnums registers enum types by declaring-package path, for switches
// in packages that import the enum (directives in dependency source are
// not visible to a per-package analysis). Tests may extend it.
var KnownEnums = map[string][]string{
	"repro/internal/core": {"State", "ProtocolKind", "AccessMode"},
}

func run(pass *analysis.Pass) error {
	enums := annotatedEnums(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, enums, sw)
			return true
		})
	}
	return nil
}

// annotatedEnums collects the *types.TypeName objects of type declarations
// carrying //adsm:statecase in this package.
func annotatedEnums(pass *analysis.Pass) map[*types.TypeName]bool {
	enums := map[*types.TypeName]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			_, declDirective := analysis.Directive(gd.Doc, "statecase")
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				_, specDirective := analysis.Directive(ts.Doc, "statecase")
				if !declDirective && !specDirective {
					if _, ok := analysis.Directive(ts.Comment, "statecase"); !ok {
						continue
					}
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					enums[tn] = true
				}
			}
		}
	}
	return enums
}

// enumTypeName resolves the switch tag type to a registered enum type
// name, or nil.
func enumTypeName(pass *analysis.Pass, enums map[*types.TypeName]bool, tag ast.Expr) *types.TypeName {
	t := pass.TypesInfo.TypeOf(tag)
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	tn := named.Obj()
	if enums[tn] {
		return tn
	}
	if tn.Pkg() == nil {
		return nil
	}
	for _, name := range KnownEnums[tn.Pkg().Path()] {
		if tn.Name() == name {
			return tn
		}
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, enums map[*types.TypeName]bool, sw *ast.SwitchStmt) {
	tn := enumTypeName(pass, enums, sw.Tag)
	if tn == nil {
		return
	}
	members := enumMembers(tn)
	if len(members) == 0 {
		return
	}
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the author opted out of exhaustiveness
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	var missing []string
	for _, m := range members {
		if !covered[m.val] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(), "switch on %s is not exhaustive: missing %s (add the cases or an explicit default)",
		typeDisplayName(pass, tn), strings.Join(missing, ", "))
}

type member struct {
	name string
	val  string // constant.Value.ExactString()
}

// enumMembers lists the declared constants of the enum type, one per
// distinct value (the first name wins), reading the declaring package's
// scope so it works across package boundaries via export data.
func enumMembers(tn *types.TypeName) []member {
	pkg := tn.Pkg()
	if pkg == nil {
		return nil
	}
	var members []member
	seen := map[string]bool{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), tn.Type()) {
			continue
		}
		key := c.Val().ExactString()
		if seen[key] {
			continue
		}
		seen[key] = true
		members = append(members, member{name: name, val: key})
	}
	return members
}

func typeDisplayName(pass *analysis.Pass, tn *types.TypeName) string {
	if tn.Pkg() == nil || tn.Pkg() == pass.Pkg {
		return tn.Name()
	}
	return fmt.Sprintf("%s.%s", tn.Pkg().Name(), tn.Name())
}
