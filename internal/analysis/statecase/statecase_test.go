package statecase_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/statecase"
)

func TestBasic(t *testing.T) {
	analysistest.Run(t, statecase.Analyzer, "statecase/basic")
}
