// Package analyzers enumerates the full adsmvet suite in one place, so
// cmd/adsmvet and the tests agree on the set.
package analyzers

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/analysis/coherence"
	"repro/internal/analysis/lanepair"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/modecheck"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/statecase"
)

// All returns the adsmvet analyzer suite in stable order. AllowCheck is
// the driver-side pseudo-analyzer auditing //adsm:allow directives
// (missing reasons, stale suppressions); it rides along so its flag and
// JSON identity exist like any other analyzer's.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		analysis.AllowCheck,
		coherence.Analyzer,
		lanepair.Analyzer,
		lockorder.Analyzer,
		modecheck.Analyzer,
		noalloc.Analyzer,
		statecase.Analyzer,
	}
}

// Validate checks the suite is well-formed: unique names (they become
// command-line flags, so a collision would shadow an analyzer) and
// non-empty docs.
func Validate() error {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			return fmt.Errorf("analyzer %q is incomplete", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("duplicate analyzer name %q (flag collision)", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
