package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/load"
	"repro/internal/analysis/noalloc"
)

// TestAllowCheckAudit drives the suppression auditor programmatically:
// allowcheck diagnostics land on the //adsm:allow directive's own line,
// where a `// want` comment cannot sit, so the golden-comment harness
// cannot express these expectations.
func TestAllowCheckAudit(t *testing.T) {
	root := analysistest.SrcRoot(t)
	unit, err := load.Dir(filepath.Join(root, "allowcheck", "basic"), root)
	if err != nil {
		t.Fatalf("loading allowcheck/basic: %v", err)
	}
	diags, err := analysis.Run(unit, []*analysis.Analyzer{noalloc.Analyzer, analysis.AllowCheck})
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}

	for _, d := range diags {
		if d.Analyzer != analysis.AllowCheck.Name {
			t.Errorf("diagnostic escaped its suppression: %s", d)
		}
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (reasonless + stale):\n%s", len(diags), render(diags))
	}
	if !strings.Contains(diags[0].Message, "//adsm:allow needs a reason") {
		t.Errorf("first diagnostic should flag the reasonless directive, got: %s", diags[0])
	}
	if !strings.Contains(diags[1].Message, "stale //adsm:allow: it suppresses no noalloc diagnostic any more") {
		t.Errorf("second diagnostic should flag the stale directive, got: %s", diags[1])
	}
}

// TestAllowCheckSkipsUnjudged re-runs the audit without noalloc in the
// suite: with no analyzer running, no directive can be judged stale, and
// the reasonless one is still flagged (the reason requirement does not
// depend on what ran).
func TestAllowCheckSkipsUnjudged(t *testing.T) {
	root := analysistest.SrcRoot(t)
	unit, err := load.Dir(filepath.Join(root, "allowcheck", "basic"), root)
	if err != nil {
		t.Fatalf("loading allowcheck/basic: %v", err)
	}
	diags, err := analysis.Run(unit, []*analysis.Analyzer{analysis.AllowCheck})
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "needs a reason") {
		t.Fatalf("got %d diagnostics, want exactly the reasonless one:\n%s", len(diags), render(diags))
	}
}

func render(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}
