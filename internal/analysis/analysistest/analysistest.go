// Package analysistest runs an analyzer over a golden testdata package and
// matches its diagnostics against `// want` expectations, mirroring the
// x/tools package of the same name on this repository's stdlib-only
// analysis framework.
//
// Expectations are comments of the form
//
//	code() // want `regexp` `another regexp`
//
// placed on the line the diagnostic is reported at. Both backquoted and
// double-quoted (Go-syntax) expectation strings are accepted. Matching is
// one-to-one per line: every diagnostic must be claimed by exactly one
// expectation and every expectation must claim exactly one diagnostic.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// SrcRoot returns the shared golden-test source tree,
// internal/analysis/testdata/src, located relative to this file so tests
// in any analyzer package find it without configuration.
func SrcRoot(t *testing.T) string {
	t.Helper()
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("analysistest: cannot locate own source file")
	}
	return filepath.Join(filepath.Dir(self), "..", "testdata", "src")
}

// Run loads the testdata package at pkgpath (relative to SrcRoot), applies
// the analyzer, and matches the diagnostics against the package's want
// comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	root := SrcRoot(t)
	unit, err := load.Dir(filepath.Join(root, filepath.FromSlash(pkgpath)), root)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgpath, err)
	}
	diags, err := analysis.Run(unit, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}

	exps := expectations(t, unit)
	for _, d := range diags {
		if !claim(exps, d) {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", d.Pos, d.Message, d.Analyzer)
		}
	}
	for _, ex := range exps {
		if !ex.matched {
			t.Errorf("%s:%d: no diagnostic matched `%s`", ex.file, ex.line, ex.raw)
		}
	}
}

// expectation is one parsed want pattern anchored to a file and line.
type expectation struct {
	file    string
	line    int
	raw     string
	re      *regexp.Regexp
	matched bool
}

// wantArg matches one Go-quoted or backquoted expectation string.
var wantArg = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectations parses every `// want ...` comment in the unit.
func expectations(t *testing.T, unit *analysis.Unit) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				exps = append(exps, parseWant(t, unit, c)...)
			}
		}
	}
	return exps
}

func parseWant(t *testing.T, unit *analysis.Unit, c *ast.Comment) []*expectation {
	t.Helper()
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil
	}
	pos := unit.Fset.Position(c.Pos())
	args := wantArg.FindAllString(rest, -1)
	if len(args) == 0 {
		t.Errorf("%s: malformed want comment: %q", pos, c.Text)
		return nil
	}
	var exps []*expectation
	for _, arg := range args {
		pattern := arg
		if arg[0] == '`' {
			pattern = arg[1 : len(arg)-1]
		} else if unq, err := strconv.Unquote(arg); err == nil {
			pattern = unq
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			t.Errorf("%s: bad want pattern %s: %v", pos, arg, err)
			continue
		}
		exps = append(exps, &expectation{file: pos.Filename, line: pos.Line, raw: pattern, re: re})
	}
	return exps
}

// claim marks the first unmatched expectation on the diagnostic's line that
// matches its message.
func claim(exps []*expectation, d analysis.Diagnostic) bool {
	for _, ex := range exps {
		if !ex.matched && ex.file == d.Pos.Filename && ex.line == d.Pos.Line && ex.re.MatchString(d.Message) {
			ex.matched = true
			return true
		}
	}
	return false
}
