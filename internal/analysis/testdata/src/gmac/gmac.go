// Package gmac is a minimal stand-in for repro/gmac used by the coherence
// analyzer's golden tests: the analyzer keys on the package *name* "gmac"
// and on method/option names, so this stub carries just those shapes.
package gmac

// Ptr is a shared-object host pointer.
type Ptr uintptr

// Kernel is an accelerator kernel registration.
type Kernel struct{ Name string }

// CallOption configures a Call.
type CallOption struct{ kind int }

// AllocOption configures an Alloc.
type AllocOption struct{ kind int }

// Async makes a Call return before the kernel completes.
func Async() CallOption { return CallOption{kind: 1} }

// Writes annotates the shared objects the kernel may write.
func Writes(ps ...Ptr) CallOption { return CallOption{kind: 2} }

// WriteOnlyHint marks objects the kernel writes without reading.
func WriteOnlyHint(ps ...Ptr) CallOption { return CallOption{kind: 3} }

// ReadOnlyHint marks objects the kernel only reads.
func ReadOnlyHint(ps ...Ptr) CallOption { return CallOption{kind: 4} }

// AccessMode declares host-side access intent for a shared object.
type AccessMode int

// The declared access modes.
const (
	ModeDefault AccessMode = iota
	ModeReadOnly
	ModeWriteOnly
)

// The short spellings the real API exports.
const (
	ReadOnly  = ModeReadOnly
	WriteOnly = ModeWriteOnly
)

// Mode declares the object's access mode at allocation.
func Mode(m AccessMode) AllocOption { return AllocOption{kind: 2} }

// Context is one host session against one accelerator.
type Context struct{ last Ptr }

// Alloc allocates a shared object.
func (c *Context) Alloc(size int64, opts ...AllocOption) (Ptr, error) { return c.last, nil }

// Call launches a kernel.
func (c *Context) Call(kernel string, args []uint64, opts ...CallOption) error { return nil }

// Sync waits for every outstanding asynchronous launch.
func (c *Context) Sync() error { return nil }

// Safe translates a shared pointer to its device address.
func (c *Context) Safe(p Ptr) (Ptr, error) { return p, nil }

// HostRead copies shared bytes into host memory.
func (c *Context) HostRead(p Ptr, n int64) ([]byte, error) { return nil, nil }

// HostWrite copies host memory into a shared object.
func (c *Context) HostWrite(p Ptr, src []byte) error { return nil }

// Memset fills a shared range with a byte.
func (c *Context) Memset(p Ptr, b byte, n int64) error { return nil }

// MemcpyFromShared copies out of a shared object.
func (c *Context) MemcpyFromShared(dst []byte, src Ptr) error { return nil }

// MemcpyToShared copies into a shared object.
func (c *Context) MemcpyToShared(dst Ptr, src []byte) error { return nil }

// MemcpyShared copies between shared objects (dst written, src read).
func (c *Context) MemcpyShared(dst, src Ptr, n int64) error { return nil }

// CallSync was removed from the real gmac API; the stub keeps the shape so
// the analyzer's removed-name check is exercised against call sites.
func (c *Context) CallSync(kernel string, args ...uint64) error { return nil }

// SafeAlloc was removed from the real gmac API; kept here for the same
// reason as CallSync.
func (c *Context) SafeAlloc(size int64) (Ptr, error) { return c.last, nil }
