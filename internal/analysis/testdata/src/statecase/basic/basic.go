// Package basic exercises the statecase analyzer over an annotated enum.
package basic

// State mirrors the block coherence states.
//
//adsm:statecase
type State uint8

// The block states; StateAlias shares a value with StateInvalid and must
// count as the same case.
const (
	StateInvalid State = iota
	StateReadOnly
	StateDirty

	StateAlias = StateInvalid
)

// Unchecked has no directive: switches over it are exempt.
type Unchecked int

const (
	UncheckedA Unchecked = iota
	UncheckedB
)

// missingCase omits StateDirty.
func missingCase(s State) int {
	switch s { // want `switch on State is not exhaustive: missing StateDirty`
	case StateInvalid:
		return 0
	case StateReadOnly:
		return 1
	}
	return -1
}

// exhaustive lists every distinct value.
func exhaustive(s State) int {
	switch s {
	case StateInvalid:
		return 0
	case StateReadOnly:
		return 1
	case StateDirty:
		return 2
	}
	return -1
}

// aliasCounts covers StateInvalid through its alias.
func aliasCounts(s State) int {
	switch s {
	case StateAlias:
		return 0
	case StateReadOnly:
		return 1
	case StateDirty:
		return 2
	}
	return -1
}

// defaulted opts out with an explicit default.
func defaulted(s State) int {
	switch s {
	case StateDirty:
		return 2
	default:
		return -1
	}
}

// uncheckedType: no directive, no registry entry, no finding.
func uncheckedType(u Unchecked) int {
	switch u {
	case UncheckedA:
		return 0
	}
	return -1
}

// allowed uses the escape hatch.
func allowed(s State) int {
	//adsm:allow statecase
	switch s {
	case StateInvalid:
		return 0
	}
	return -1
}
