// Package basic exercises the lanepair analyzer against a stand-in Clock
// (the analyzer keys on the EnterLane/ExitLane method names).
package basic

// Time is a stand-in for sim.Time.
type Time int64

// Clock is a stand-in for sim.Clock.
type Clock struct{ now Time }

func (c *Clock) EnterLane()          {}
func (c *Clock) EnterLaneAt(at Time) {}
func (c *Clock) ExitLane()           {}

// leaks never exits the lane.
func leaks(c *Clock) {
	c.EnterLane() // want `EnterLane is not followed by a dominated ExitLane`
	work()
}

// returnsEarly has a return path between EnterLane and ExitLane.
func returnsEarly(c *Clock, bail bool) {
	c.EnterLane() // want `EnterLane is not followed by a dominated ExitLane`
	if bail {
		return
	}
	c.ExitLane()
}

// deferred pairs with a defer, covering every return path.
func deferred(c *Clock, bail bool) {
	c.EnterLane()
	defer c.ExitLane()
	if bail {
		return
	}
	work()
}

// straightLine pairs with a later call in the same block.
func straightLine(c *Clock) {
	c.EnterLaneAt(10)
	work()
	c.ExitLane()
}

// bareExit without a preceding EnterLane is a documented no-op.
func bareExit(c *Clock) {
	c.ExitLane()
}

// allowed uses the escape hatch (e.g. the EnterLane implementation
// itself, or a pairing the analyzer cannot see).
func allowed(c *Clock) {
	c.EnterLane() //adsm:allow lanepair
	work()
}

// notAClock: free functions with the same names are not lane calls.
func notAClock() {
	EnterLane()
}

// EnterLane the free function exists only to prove the method requirement.
func EnterLane() {}

func work() {}
