// Package wrapper exercises EnterLane/ExitLane pairing through helper
// wrappers: an //adsm:lanewrapper helper legitimately leaves its lane
// open, its callers inherit the obligation to exit, and the analyzer must
// see the EnterLane through one or two wrapper levels.
package wrapper

// Clock is a stand-in for sim.Clock.
type Clock struct{}

func (c *Clock) EnterLane() {}
func (c *Clock) ExitLane()  {}

// enterHelper opens a lane for its caller: the annotation blesses the
// unpaired EnterLane in its own body and marks its summary lane-entering.
//
//adsm:lanewrapper
func enterHelper(c *Clock) {
	c.EnterLane()
}

// enterDouble wraps the wrapper: still annotated, still blessed.
//
//adsm:lanewrapper
func enterDouble(c *Clock) {
	enterHelper(c)
}

// exitHelper closes the caller's lane; its summary is lane-exiting.
func exitHelper(c *Clock) {
	c.ExitLane()
}

// leaky enters through the wrapper and never exits.
func leaky(c *Clock) {
	enterHelper(c) // want `call to wrapper\.enterHelper enters a lane \(EnterLane at wrapper\.go:\d+ \(via wrapper\.enterHelper at wrapper\.go:\d+\)\) and is not followed by a dominated ExitLane`
	work()
}

// leakyDouble leaks through two wrapper levels: the chain names both.
func leakyDouble(c *Clock) {
	enterDouble(c) // want `call to wrapper\.enterDouble enters a lane \(EnterLane at wrapper\.go:\d+ \(via wrapper\.enterDouble at wrapper\.go:\d+ -> wrapper\.enterHelper at wrapper\.go:\d+\)\) and is not followed by a dominated ExitLane`
	work()
}

// paired exits with a later direct call in the same block: fine.
func paired(c *Clock) {
	enterHelper(c)
	work()
	c.ExitLane()
}

// pairedDefer exits with a deferred direct call: fine on every path.
func pairedDefer(c *Clock, bail bool) {
	enterHelper(c)
	defer c.ExitLane()
	if bail {
		return
	}
	work()
}

// pairedViaHelpers enters and exits through helpers on both sides: the
// exit helper's summary satisfies the domination check.
func pairedViaHelpers(c *Clock) {
	enterHelper(c)
	work()
	exitHelper(c)
}

func work() {}
