// Package recursive exercises the engine's fixpoint on mutually recursive
// helpers: the SCC's summaries must converge — allocating for the pair
// that allocates, clean for the pair that doesn't — instead of descending
// unboundedly. The test completing at all is the termination proof.
package recursive

// hot sees the allocation inside the mutualA<->mutualB cycle.
//
//adsm:noalloc
func hot(n int) {
	mutualA(n) // want `hot is //adsm:noalloc: call to recursive\.mutualA allocates: make allocates at recursive\.go:\d+ \(via recursive\.mutualB at recursive\.go:\d+\)`
}

func mutualA(n int) {
	if n > 0 {
		mutualB(n - 1)
	}
}

func mutualB(n int) {
	_ = make([]int, n)
	mutualA(n - 1)
}

// hotClean calls into a recursive cycle that never allocates: the SCC
// must settle on clean summaries and report nothing.
//
//adsm:noalloc
func hotClean(n int) int {
	return pingA(n)
}

func pingA(n int) int {
	if n <= 0 {
		return 0
	}
	return pingB(n - 1)
}

func pingB(n int) int {
	return pingA(n - 1)
}
