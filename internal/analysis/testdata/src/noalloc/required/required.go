// Package required exercises the required-annotation table: in any package
// path ending in "noalloc/required" the analyzer demands that hotRequired
// carry //adsm:noalloc, so deleting the directive is itself a finding.
package required

func hotRequired(x int) int { // want `hotRequired is on the ADSM fault hot path and must be annotated //adsm:noalloc`
	return x * 2
}

// otherFunc is not in the required table: no annotation demanded.
func otherFunc() []int {
	return make([]int, 4)
}
