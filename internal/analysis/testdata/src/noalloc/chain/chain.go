// Package chain seeds noalloc violations behind one and two levels of
// calls crossing into the sibling dep package, proving the engine's
// summaries flow bottom-up across package boundaries and that diagnostics
// carry the call chain down to the allocating construct.
package chain

import "noalloc/chain/dep"

// hot reaches dep.Leaf's make through the unannotated local middleman:
// the violation is two call levels deep and the chain must name both.
//
//adsm:noalloc
func hot() {
	mid() // want `hot is //adsm:noalloc: call to chain\.mid allocates: make allocates at dep\.go:\d+ \(via dep\.Leaf at chain\.go:\d+\)`
}

// mid is deliberately unannotated: its summary carries dep.Leaf's
// allocation up to hot.
func mid() {
	dep.Leaf()
}

// direct violates across the package boundary with no middleman.
//
//adsm:noalloc
func direct() {
	dep.Leaf() // want `direct is //adsm:noalloc: call to dep\.Leaf allocates: make allocates at dep\.go:\d+`
}

// degraded hands off to the cold slow path directly: blessed.
//
//adsm:noalloc
func degraded() {
	dep.Slow()
}

// hidden reaches the cold function through an unannotated middleman,
// which hides the hot/cold transition: flagged with the chain.
//
//adsm:noalloc
func hidden() {
	viaCold() // want `hidden is //adsm:noalloc: call to chain\.viaCold allocates: //adsm:cold function allocates by design at dep\.go:\d+ \(via dep\.Slow at chain\.go:\d+\)`
}

func viaCold() {
	dep.Slow()
}

// fine calls a cross-package helper whose summary is clean.
//
//adsm:noalloc
func fine(x int) int {
	return dep.Clean(x)
}
