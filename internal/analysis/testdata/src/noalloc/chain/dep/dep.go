// Package dep is the dependency side of the cross-package noalloc
// fixtures: the sibling chain package calls into it directly and through
// middlemen, and the analyzer must surface these allocations across the
// package boundary via dependency summaries.
package dep

// Leaf allocates: the construct the chain fixtures must see from one and
// two calls away.
func Leaf() []int {
	return make([]int, 8)
}

// Slow is a blessed slow path: deliberately allocating, callable directly
// from //adsm:noalloc functions but not through an unannotated middleman.
//
//adsm:cold
func Slow() []int {
	return make([]int, 64)
}

// Clean is summarized alloc-free without any annotation.
func Clean(x int) int { return x + 1 }
