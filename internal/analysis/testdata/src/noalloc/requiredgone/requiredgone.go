// Package requiredgone proves the required-annotation table cannot rot:
// the table (see requiredSet in internal/analysis/noalloc/required.go)
// registers this package as requiring hotRequired AND vanishedHelper, but
// only the former is declared, so the ghost entry is reported on the
// package clause instead of silently checking nothing.
package requiredgone // want `noalloc required-annotation table lists vanishedHelper, but noalloc/requiredgone declares no such function; update internal/analysis/noalloc/required\.go`

//adsm:noalloc
func hotRequired(x int) int { return x + 1 }
