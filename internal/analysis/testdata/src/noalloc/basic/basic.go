// Package basic exercises the noalloc analyzer over the allocating
// constructs it rejects and the allocation-free shapes it must accept.
package basic

import "fmt"

//adsm:noalloc
func appends(xs []int, x int) []int {
	return append(xs, x) // want `appends is //adsm:noalloc: append may grow its backing array`
}

//adsm:noalloc
func makes() []int {
	return make([]int, 8) // want `makes is //adsm:noalloc: make allocates`
}

//adsm:noalloc
func closes(n int) func() int {
	return func() int { return n } // want `closes is //adsm:noalloc: function literal allocates a closure`
}

//adsm:noalloc
func spawns(ch chan int) {
	go send(ch) // want `spawns is //adsm:noalloc: go statement allocates a goroutine`
}

//adsm:noalloc
func formats(x int) {
	fmt.Println(x) // want `formats is //adsm:noalloc: fmt call allocates`
}

//adsm:noalloc
func concats(a, b string) string {
	return a + b // want `concats is //adsm:noalloc: string concatenation allocates`
}

//adsm:noalloc
func boxes(x int) {
	sink(x) // want `boxes is //adsm:noalloc: converting int to interface .* allocates \(boxing\)`
}

//adsm:noalloc
func deferLoop(xs []int) {
	for range xs {
		defer release() // want `deferLoop is //adsm:noalloc: defer inside a loop heap-allocates`
	}
}

// clean is allocation-free: index arithmetic, calls, pointers, and a
// directly deferred call are all fine.
//
//adsm:noalloc
func clean(xs []int, p *int) int {
	defer release()
	n := *p
	for i, x := range xs {
		if x > n {
			n = x + i
		}
	}
	sinkPtr(p) // pointers fit in the interface word: no boxing
	return n
}

// allowedAppend uses the escape hatch for an amortised append.
//
//adsm:noalloc
func allowedAppend(xs []int, x int) []int {
	xs = append(xs, x) //adsm:allow noalloc
	return xs
}

// unannotated functions allocate freely.
func unannotated() []int {
	return make([]int, 8)
}

func send(ch chan int) { ch <- 1 }
func release()         {}
func sink(v any)       { _ = v }
func sinkPtr(v any)    { _ = v }
