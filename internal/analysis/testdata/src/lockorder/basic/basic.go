// Package basic exercises the lockorder analyzer: level ordering,
// self-deadlock, and the nowait discipline.
package basic

import "sync"

// mgr mirrors the internal/core lock hierarchy in miniature.
type mgr struct {
	//adsm:lock callMu 10
	callMu sync.Mutex
	//adsm:lock treeMu 30
	treeMu sync.RWMutex
	//adsm:lock statsMu 40 nowait
	statsMu sync.Mutex

	ch chan int
	wg sync.WaitGroup
}

// ascending acquires in level order: fine.
func (m *mgr) ascending() {
	m.callMu.Lock()
	m.treeMu.Lock()
	m.treeMu.Unlock()
	m.callMu.Unlock()
}

// descending inverts the order.
func (m *mgr) descending() {
	m.treeMu.Lock()
	m.callMu.Lock() // want `lock callMu \(level 10\) acquired while holding treeMu \(level 30\)`
	m.callMu.Unlock()
	m.treeMu.Unlock()
}

// reentrant self-deadlocks.
func (m *mgr) reentrant() {
	m.callMu.Lock()
	m.callMu.Lock() // want `lock callMu acquired while already held \(self-deadlock\)`
	m.callMu.Unlock()
	m.callMu.Unlock()
}

// deferredRelease holds via defer: the held set survives to function end,
// so the later acquisition is still checked.
func (m *mgr) deferredRelease() {
	m.treeMu.RLock()
	defer m.treeMu.RUnlock()
	m.callMu.Lock() // want `lock callMu \(level 10\) acquired while holding treeMu \(level 30\)`
	m.callMu.Unlock()
}

// waitsUnderNowait blocks on a channel with a nowait lock held.
func (m *mgr) waitsUnderNowait() {
	m.statsMu.Lock()
	<-m.ch      // want `channel receive while holding statsMu, a nowait lock`
	m.ch <- 1   // want `channel send while holding statsMu, a nowait lock`
	m.wg.Wait() // want `sync.WaitGroup.Wait while holding statsMu, a nowait lock`
	m.statsMu.Unlock()
}

// releasedBeforeWait is the fixed version: fine.
func (m *mgr) releasedBeforeWait() {
	m.statsMu.Lock()
	m.statsMu.Unlock()
	<-m.ch
}

// blockingDMA is the stand-in for a DMA wait.
//
//adsm:blocking
func blockingDMA() {}

// callsBlocking calls an //adsm:blocking function under a nowait lock.
func (m *mgr) callsBlocking() {
	m.statsMu.Lock()
	blockingDMA() // want `call to //adsm:blocking blockingDMA while holding statsMu, a nowait lock`
	m.statsMu.Unlock()
}

// branchesAreIndependent: a lock taken in one branch does not leak into
// the other.
func (m *mgr) branchesAreIndependent(x bool) {
	if x {
		m.treeMu.Lock()
		m.treeMu.Unlock()
	} else {
		m.callMu.Lock()
		m.callMu.Unlock()
	}
}

// goroutinesStartEmpty: a spawned goroutine does not inherit held locks.
func (m *mgr) goroutinesStartEmpty() {
	m.statsMu.Lock()
	go func() {
		<-m.ch // a fresh goroutine holds nothing
	}()
	m.statsMu.Unlock()
}

// allowed uses the escape hatch.
func (m *mgr) allowed() {
	m.treeMu.Lock()
	m.callMu.Lock() //adsm:allow lockorder
	m.callMu.Unlock()
	m.treeMu.Unlock()
}
