// Package chain seeds lock-hierarchy and nowait violations that only
// exist interprocedurally: the offending acquisition or wait lives in the
// sibling dep package (or behind a local middleman), and the checker must
// find it through callee summaries.
package chain

import (
	"sync"

	"lockorder/chain/dep"
)

// mgr holds the high-level locks of this package's hierarchy.
type mgr struct {
	//adsm:lock treeMu 30
	treeMu sync.Mutex
	//adsm:lock statsMu 40 nowait
	statsMu sync.Mutex
}

// bad acquires the level-10 device lock while holding the level-30 tree
// lock — one package boundary away.
func (m *mgr) bad(d *dep.D) {
	m.treeMu.Lock()
	dep.Grab(d) // want `call to dep\.Grab acquires lock devMu \(level 10\) at dep\.go:\d+ while holding treeMu \(level 30\) \(via dep\.Grab at chain\.go:\d+\); the ADSM lock order requires strictly ascending levels`
	m.treeMu.Unlock()
}

// worse buries the same inversion one level deeper behind a local
// middleman: the chain must render both frames.
func (m *mgr) worse(d *dep.D) {
	m.treeMu.Lock()
	grabVia(d) // want `call to chain\.grabVia acquires lock devMu \(level 10\) at dep\.go:\d+ while holding treeMu \(level 30\) \(via chain\.grabVia at chain\.go:\d+ -> dep\.Grab at chain\.go:\d+\); the ADSM lock order requires strictly ascending levels`
	m.treeMu.Unlock()
}

func grabVia(d *dep.D) {
	dep.Grab(d)
}

// stats blocks — transitively, inside dep.Blocker — while holding a
// nowait lock.
func (m *mgr) stats(d *dep.D) {
	m.statsMu.Lock()
	dep.Blocker(d) // want `call to dep\.Blocker, which may block \(channel receive at dep\.go:\d+\) \(via dep\.Blocker at chain\.go:\d+\) while holding statsMu, a nowait lock acquired at .*`
	m.statsMu.Unlock()
}

// fine grabs the device lock with nothing held, then takes the tree lock
// after dep.Grab has released: no violation.
func (m *mgr) fine(d *dep.D) {
	dep.Grab(d)
	m.treeMu.Lock()
	m.treeMu.Unlock()
}
