// Package dep hides an annotated lock and a blocking wait behind exported
// helpers, so the sibling chain package can violate the lock hierarchy
// and the nowait rule across a package boundary.
package dep

import "sync"

// D is a device-side structure with its own low-level lock.
type D struct {
	//adsm:lock devMu 10
	devMu sync.Mutex
	ch    chan int
}

// Grab acquires and releases the device lock: its summary still records
// the acquisition, which must respect every caller's held set.
func Grab(d *D) {
	d.devMu.Lock()
	d.devMu.Unlock()
}

// Blocker waits on the device channel: transitively blocking.
func Blocker(d *D) {
	<-d.ch
}
