// Package basic seeds //adsm:allow audit cases for the allowcheck
// programmatic test (allowcheck diagnostics land on the directive's own
// line, where a `// want` comment cannot sit): a reasonless suppression,
// a justified one that must survive untouched, a stale one, and one
// naming an analyzer outside the running suite.
package basic

// reasonless suppresses a real finding but omits the mandatory reason.
//
//adsm:noalloc
func reasonless() []int {
	return make([]int, 4) //adsm:allow noalloc
}

// justified is the canonical shape: analyzer names, colon, reason.
//
//adsm:noalloc
func justified() []int {
	return make([]int, 4) //adsm:allow noalloc: fixture exercises the canonical suppression shape
}

// stale carries a suppression on a line with no finding left to suppress.
func stale() int {
	return 42 //adsm:allow noalloc: the violation this excused is long gone
}

// unjudged names an analyzer that does not run in this suite, so it can
// never be judged stale.
func unjudged() int {
	return 7 //adsm:allow lockorder: lockorder does not run in this suite
}
