// Package basic exercises the coherence analyzer: removed wrappers,
// async host reads before Sync, and stale Safe pointers.
package basic

import "gmac"

// removedWrappers: every call site of a removed pre-Session wrapper is
// flagged with its replacement.
func removedWrappers(ctx *gmac.Context) {
	_ = ctx.CallSync("saxpy", 1) // want `CallSync was removed: use Call\(kernel, args\) followed by Sync\(\)`
	_, _ = ctx.SafeAlloc(4096)   // want `SafeAlloc was removed: use Alloc\(size, gmac.Safe\(\)\)`
}

// allowedRemoved: the escape hatch suppresses the finding.
func allowedRemoved(ctx *gmac.Context) {
	//adsm:allow coherence
	_ = ctx.CallSync("saxpy", 1)
}

// asyncThenRead: reading kernel output before Sync observes stale data.
func asyncThenRead(ctx *gmac.Context, p gmac.Ptr) {
	_ = ctx.Call("saxpy", nil, gmac.Async())
	_, _ = ctx.HostRead(p, 4) // want `HostRead on ctx may observe stale data`
	_ = ctx.Sync()
	_, _ = ctx.HostRead(p, 4) // after Sync: fine
}

// asyncWithWrites: only the annotated written pointers taint reads.
func asyncWithWrites(ctx *gmac.Context, p, q gmac.Ptr) {
	_ = ctx.Call("saxpy", nil, gmac.Async(), gmac.Writes(p))
	_, _ = ctx.HostRead(q, 4) // q is not written: fine
	_, _ = ctx.HostRead(p, 4) // want `HostRead on ctx may observe stale data`
}

// syncCallIsBarrier: a synchronous Call ends in Sync, completing earlier
// async launches.
func syncCallIsBarrier(ctx *gmac.Context, p gmac.Ptr) {
	_ = ctx.Call("saxpy", nil, gmac.Async())
	_ = ctx.Call("saxpy", nil)
	_, _ = ctx.HostRead(p, 4) // fine: the synchronous Call drained the queue
}

// staleSafe: a Safe pointer saved across a launch must be re-acquired.
// Passing dp *into* the Call is fine (arguments are read before the launch
// takes effect); using it afterwards is not.
func staleSafe(ctx *gmac.Context, p gmac.Ptr) uint64 {
	dp, _ := ctx.Safe(p)
	_ = ctx.Call("saxpy", []uint64{uint64(dp)})
	return uint64(dp) // want `dp holds a Safe\(\) pointer acquired before the Call`
}

// reacquiredSafe: re-acquiring after the launch resets tracking.
func reacquiredSafe(ctx *gmac.Context, p gmac.Ptr) uint64 {
	dp, _ := ctx.Safe(p)
	_ = ctx.Call("saxpy", []uint64{uint64(dp)})
	dp, _ = ctx.Safe(p)
	return uint64(dp) // fine: fresh translation
}
