// Package helper hosts cross-package gmac helpers for the modecheck
// fixtures: their host accesses must surface in sibling-package callers
// through dependency summaries.
package helper

import "gmac"

// Fill host-writes the whole object.
func Fill(s *gmac.Context, p gmac.Ptr, b byte) {
	s.Memset(p, b, 64)
}
