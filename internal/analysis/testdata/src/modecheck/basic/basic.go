// Package basic exercises the modecheck analyzer: host accesses that
// violate the declared gmac access mode, directly, through local helper
// chains, and through a sibling-package helper.
package basic

import (
	"gmac"

	"modecheck/basic/helper"
)

// hostWriteReadOnly writes a ReadOnly object from the host.
func hostWriteReadOnly(s *gmac.Context, src []byte) {
	p, _ := s.Alloc(64, gmac.Mode(gmac.ReadOnly))
	s.HostWrite(p, src) // want `HostWrite writes p, which is allocated gmac\.ReadOnly at basic\.go:\d+; writes to ReadOnly objects fail with ErrModeViolation`
}

// kernelWritesReadOnly declares a kernel write of a ReadOnly object.
func kernelWritesReadOnly(s *gmac.Context) {
	p, _ := s.Alloc(64, gmac.Mode(gmac.ReadOnly))
	s.Call("k", nil, gmac.Writes(p)) // want `kernel declares Writes\(p\), but p is allocated gmac\.ReadOnly at basic\.go:\d+; ReadOnly objects are sealed after their first release \(ErrModeViolation at run time\)`
}

// readWriteOnlyUnwritten reads a WriteOnly object before anything has
// written it.
func readWriteOnlyUnwritten(s *gmac.Context) {
	p, _ := s.Alloc(64, gmac.Mode(gmac.WriteOnly))
	s.HostRead(p, 64) // want `HostRead reads p, which is allocated gmac\.WriteOnly at basic\.go:\d+ and not yet written; reads of WriteOnly objects fail with ErrModeViolation`
}

// readWriteOnlyWritten is the fixed variant: a kernel write populates the
// object before the host read.
func readWriteOnlyWritten(s *gmac.Context) {
	p, _ := s.Alloc(64, gmac.Mode(gmac.WriteOnly))
	s.Call("fill", nil, gmac.Writes(p))
	s.HostRead(p, 64)
}

// scrubReadOnly reaches a Memset of a ReadOnly object through two local
// helpers: the diagnostic chain must render both frames.
func scrubReadOnly(s *gmac.Context) {
	p, _ := s.Alloc(64, gmac.Mode(gmac.ReadOnly))
	scrub(s, p) // want `Memset writes p, which is allocated gmac\.ReadOnly at basic\.go:\d+; writes to ReadOnly objects fail with ErrModeViolation \(via basic\.scrub at basic\.go:\d+ -> basic\.wipe at basic\.go:\d+\)`
}

func scrub(s *gmac.Context, p gmac.Ptr) {
	wipe(s, p)
}

func wipe(s *gmac.Context, p gmac.Ptr) {
	s.Memset(p, 0, 64)
}

// fillReadOnly writes a ReadOnly object through the sibling-package
// helper: the effect crosses the package boundary via its summary.
func fillReadOnly(s *gmac.Context) {
	p, _ := s.Alloc(64, gmac.Mode(gmac.ReadOnly))
	helper.Fill(s, p, 1) // want `Memset writes p, which is allocated gmac\.ReadOnly at basic\.go:\d+; writes to ReadOnly objects fail with ErrModeViolation \(via helper\.Fill at basic\.go:\d+\)`
}

// fillDefault is the same call on a mode-less allocation: fine.
func fillDefault(s *gmac.Context) {
	p, _ := s.Alloc(64)
	helper.Fill(s, p, 1)
}

// asyncReadViaHelper reads, through a helper, an object an async kernel
// may still be writing. Direct async reads are the coherence analyzer's
// diagnostic; the helper-mediated one is modecheck's.
func asyncReadViaHelper(s *gmac.Context) {
	p, _ := s.Alloc(64)
	s.Call("k", nil, gmac.Writes(p), gmac.Async())
	checksum(s, p) // want `HostRead reads p while the async kernel launched at basic\.go:\d+ may still be writing it; Sync first \(via basic\.checksum at basic\.go:\d+\)`
}

// asyncReadSynced is the fixed variant: Sync lands the kernel's writes
// before the helper reads.
func asyncReadSynced(s *gmac.Context) {
	p, _ := s.Alloc(64)
	s.Call("k", nil, gmac.Writes(p), gmac.Async())
	s.Sync()
	checksum(s, p)
}

func checksum(s *gmac.Context, p gmac.Ptr) byte {
	b, _ := s.HostRead(p, 64)
	var x byte
	for _, c := range b {
		x ^= c
	}
	return x
}

// reassigned aliases the pointer before the write: tracking stops and
// nothing is reported (the analyzer is deliberately first-order).
func reassigned(s *gmac.Context, src []byte) gmac.Ptr {
	p, _ := s.Alloc(64, gmac.Mode(gmac.ReadOnly))
	q := p
	s.HostWrite(q, src)
	return q
}
