// Package callgraph is the interprocedural summary engine under the
// adsmvet analyzers.
//
// The repository's invariants — the allocation-free fault hot path, the
// core lock hierarchy, EnterLane/ExitLane pairing, and the PR 7 access-mode
// contracts — were originally enforced intra-procedurally, so any violation
// hidden behind one helper call escaped `make vet`. This package makes the
// analyzers see through calls:
//
//   - a per-package call graph with static call resolution plus method-set
//     (class-hierarchy) resolution of interface calls to their in-package
//     implementations;
//   - strongly-connected-component condensation of that graph (Tarjan),
//     so mutually recursive helpers are summarized by a terminating
//     fixpoint rather than unbounded descent;
//   - a bottom-up fixpoint computing one FuncSummary per function:
//     does it allocate (and through which call chain), may it block, which
//     annotated locks does it transitively acquire, does calling it enter
//     or exit a sim.Clock lane, and which gmac.Ptr parameters does it
//     host-write or host-read.
//
// Summaries cross package boundaries two ways. When a dependency's source
// is loaded (standalone adsmvet, analysistest), its unit is summarized
// recursively through Unit.DepUnits. Under `go vet -vettool` each package
// is checked in isolation, so summaries are serialized into the vetx
// "facts" file cmd/go threads from dependency to dependent
// (Unit.DepBlob). Unknown functions — standard library beyond a small
// built-in table, unresolved dynamic calls — are treated conservatively
// by the noalloc consumer and permissively by the others (documented in
// each analyzer).
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"repro/internal/analysis"
)

// Node is one declared function or method of the package under analysis.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	File *ast.File
	// Edges are the node's call sites in source order. Calls inside nested
	// function literals are excluded — a stored closure runs on its own
	// schedule (and noalloc flags the literal itself) — except literals
	// that are immediately invoked or immediately deferred, whose bodies
	// execute as part of this function.
	Edges []Edge
}

// Edge is one resolved call site.
type Edge struct {
	Call   *ast.CallExpr
	Callee *types.Func
	// Dynamic marks an interface-method call resolved to this concrete
	// implementation by method-set analysis (one Edge per implementation).
	Dynamic bool
}

// Info is the per-package product of the engine: the call graph, the
// annotated lock declarations, and every function summary reachable from
// this package (local ones computed by fixpoint, imported ones loaded
// from dependency units or vetx blobs).
type Info struct {
	Unit  *analysis.Unit
	Nodes []*Node
	// Locks are the //adsm:lock annotated mutex fields of this package.
	Locks map[types.Object]LockDecl

	byFn    map[*types.Func]*Node
	local   map[string]*FuncSummary // keyed by types.Func FullName
	impls   map[string][]*types.Func
	depMemo map[string]*PkgSummary // dependency package summaries
}

// Of returns the engine's Info for the pass's package, building it on
// first use and sharing it between analyzers through the unit cache.
func Of(pass *analysis.Pass) (*Info, error) {
	return Summarize(pass.Unit)
}

// Summarize builds (or returns the cached) Info for a loaded unit,
// summarizing module-local dependency units recursively.
func Summarize(unit *analysis.Unit) (*Info, error) {
	v, err := unit.Cache("callgraph", func() (any, error) {
		return build(unit)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Info), nil
}

func build(unit *analysis.Unit) (*Info, error) {
	info := &Info{
		Unit:    unit,
		byFn:    map[*types.Func]*Node{},
		local:   map[string]*FuncSummary{},
		impls:   implementations(unit),
		depMemo: map[string]*PkgSummary{},
	}
	info.Locks = collectLocks(unit)
	for _, file := range unit.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := unit.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Fn: obj, Decl: fn, File: file}
			if fn.Body != nil {
				n.Edges = info.edges(fn.Body)
			}
			info.Nodes = append(info.Nodes, n)
			info.byFn[obj] = n
		}
	}
	info.fixpoint()
	return info, nil
}

// Node returns the graph node declaring fn in this package, or nil.
func (in *Info) Node(fn *types.Func) *Node {
	return in.byFn[origin(fn)]
}

// edges collects the resolved call sites of a function body in source
// order, with InspectInline's function-literal policy.
func (in *Info) edges(body *ast.BlockStmt) []Edge {
	var edges []Edge
	InspectInline(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			edges = append(edges, in.resolve(call)...)
		}
		return true
	})
	return edges
}

// resolve maps one call expression to its callee edges: the static callee
// when the call is direct, or every in-package implementation when the
// callee is an interface method (method-set resolution).
func (in *Info) resolve(call *ast.CallExpr) []Edge {
	fn := analysis.CalleeFunc(in.Unit.TypesInfo, call)
	if fn == nil {
		return nil // builtin, conversion, or func-value call
	}
	fn = origin(fn)
	if !isInterfaceMethod(fn) {
		return []Edge{{Call: call, Callee: fn}}
	}
	var edges []Edge
	for _, impl := range in.impls[fn.Name()] {
		if implementsMethod(impl, fn) {
			edges = append(edges, Edge{Call: call, Callee: impl, Dynamic: true})
		}
	}
	if len(edges) == 0 {
		// No in-package implementation: keep the abstract callee so
		// consumers can see an unresolvable dynamic call.
		edges = []Edge{{Call: call, Callee: fn, Dynamic: true}}
	}
	return edges
}

// Callees resolves one call expression on demand (for analyzers walking
// regions the graph excludes, e.g. stored closures).
func (in *Info) Callees(call *ast.CallExpr) []Edge {
	return in.resolve(call)
}

// implementations indexes the package's concrete methods by name, for
// method-set resolution of interface calls.
func implementations(unit *analysis.Unit) map[string][]*types.Func {
	impls := map[string][]*types.Func{}
	scope := unit.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if types.IsInterface(named.Underlying()) {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			impls[m.Name()] = append(impls[m.Name()], m)
		}
	}
	return impls
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// implementsMethod reports whether concrete method impl satisfies the
// interface method iface (same name, receiver type implements the
// interface).
func implementsMethod(impl, iface *types.Func) bool {
	if impl.Name() != iface.Name() {
		return false
	}
	isig, ok := iface.Type().(*types.Signature)
	if !ok || isig.Recv() == nil {
		return false
	}
	itf, ok := isig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	csig, ok := impl.Type().(*types.Signature)
	if !ok || csig.Recv() == nil {
		return false
	}
	recv := csig.Recv().Type()
	return types.Implements(recv, itf) || types.Implements(types.NewPointer(recv), itf)
}

// origin canonicalizes generic instantiations to their declaration.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// Display renders a function for diagnostics: "core.handleFault" or
// "core.(*Manager).handleFault".
func Display(fn *types.Func) string {
	name := fn.Name()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			ptr = "*"
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return fmt.Sprintf("%s(%s%s).%s", pkg, ptr, named.Obj().Name(), name)
		}
	}
	return pkg + name
}

// short renders a position as "file.go:line" (base name only, so chains
// stay readable and testdata-stable across absolute paths).
func short(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// Frame renders one call-chain frame for diagnostics.
func (in *Info) Frame(fn *types.Func, at token.Pos) SummaryFrame {
	return SummaryFrame{Name: Display(fn), Pos: short(in.Unit.Fset, at)}
}
