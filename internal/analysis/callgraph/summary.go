package callgraph

import (
	"encoding/json"
	"fmt"
	"go/types"
	"strings"
)

// SummaryVersion is bumped whenever the FuncSummary wire shape changes, so
// stale vetx blobs from an older adsmvet are discarded instead of
// misdecoded.
const SummaryVersion = 1

// SummaryFrame is one call-chain step: a callee and the file:line of the
// call site (base name only, stable across checkouts).
type SummaryFrame struct {
	Name string `json:"n"`
	Pos  string `json:"p"`
}

// LockUse is one annotated lock a function may acquire, directly or
// transitively.
type LockUse struct {
	Name   string         `json:"name"`
	Level  int            `json:"level"`
	Nowait bool           `json:"nowait,omitempty"`
	Pos    string         `json:"pos"`             // acquisition site
	Chain  []SummaryFrame `json:"chain,omitempty"` // call path to it
}

// ParamEffect records that a gmac.Ptr parameter is host-written or
// host-read somewhere under this function.
type ParamEffect struct {
	Index int            `json:"i"`    // parameter index in the signature
	What  string         `json:"what"` // e.g. "HostWrite", "Memset"
	Pos   string         `json:"pos"`
	Chain []SummaryFrame `json:"chain,omitempty"`
}

// FuncSummary is the bottom-up dataflow fact set for one function: what
// calling it may do, independent of call context. Chains hold the call
// path from the summarized function to the offending construct (first
// frame = its direct callee); an empty chain means the construct is in
// the function's own body.
type FuncSummary struct {
	// Annotations on the declaration.
	NoAlloc     bool `json:"noalloc,omitempty"`     // //adsm:noalloc: trusted alloc-free
	Cold        bool `json:"cold,omitempty"`        // //adsm:cold: allocating by design
	LaneWrapper bool `json:"lanewrapper,omitempty"` // //adsm:lanewrapper

	// Allocation behavior. NoAlloc functions summarize as non-allocating
	// (their own bodies are checked at their definition); Cold functions
	// summarize as allocating.
	Allocates  bool           `json:"allocates,omitempty"`
	AllocWhat  string         `json:"allocWhat,omitempty"`
	AllocPos   string         `json:"allocPos,omitempty"`
	AllocChain []SummaryFrame `json:"allocChain,omitempty"`

	// Blocking behavior (channel operations, sync waits, //adsm:blocking).
	Blocks     bool           `json:"blocks,omitempty"`
	BlockWhat  string         `json:"blockWhat,omitempty"`
	BlockPos   string         `json:"blockPos,omitempty"`
	BlockChain []SummaryFrame `json:"blockChain,omitempty"`

	// Annotated locks this function may acquire (even if it also releases
	// them: the acquisition itself must respect the hierarchy).
	Acquires []LockUse `json:"acquires,omitempty"`

	// Lane discipline: calling this function enters a sim.Clock lane the
	// caller must exit (LaneEnters), or exits one the caller entered
	// (LaneExits).
	LaneEnters bool           `json:"laneEnters,omitempty"`
	LaneExits  bool           `json:"laneExits,omitempty"`
	LanePos    string         `json:"lanePos,omitempty"`
	LaneChain  []SummaryFrame `json:"laneChain,omitempty"`

	// Host accesses to gmac.Ptr parameters.
	PtrWrites []ParamEffect `json:"ptrWrites,omitempty"`
	PtrReads  []ParamEffect `json:"ptrReads,omitempty"`
}

// PkgSummary is the serialized per-package summary set carried across
// package boundaries (the vetx facts payload in unitchecker mode), keyed
// by types.Func.FullName.
type PkgSummary struct {
	Version int                     `json:"version"`
	Funcs   map[string]*FuncSummary `json:"funcs"`
}

// Export snapshots this package's local summaries for serialization.
func (in *Info) Export() *PkgSummary {
	ps := &PkgSummary{Version: SummaryVersion, Funcs: map[string]*FuncSummary{}}
	for name, s := range in.local {
		ps.Funcs[name] = s
	}
	return ps
}

// Encode serializes the package summary (the vetx facts payload).
func (ps *PkgSummary) Encode() ([]byte, error) {
	return json.Marshal(ps)
}

// DecodeSummary parses a serialized package summary, rejecting blobs from
// other summary versions (nil, nil: treat the dependency as unknown).
func DecodeSummary(blob []byte) (*PkgSummary, error) {
	ps := new(PkgSummary)
	if err := json.Unmarshal(blob, ps); err != nil {
		return nil, err
	}
	if ps.Version != SummaryVersion {
		return nil, nil
	}
	return ps, nil
}

// Summary returns the dataflow summary of fn as seen from this package:
// package-local functions resolve to the fixpoint result, module-local
// dependencies to their source- or vetx-derived summaries, and a short
// built-in table covers the standard-library functions the hot paths are
// allowed to use. nil means the function is unknown (callers must be
// conservative where it matters).
func (in *Info) Summary(fn *types.Func) *FuncSummary {
	fn = origin(fn)
	if fn.Pkg() == nil {
		return nil // universe scope (error.Error)
	}
	if fn.Pkg().Path() == in.Unit.Pkg.Path() {
		return in.local[fn.FullName()]
	}
	if s := knownSummary(fn); s != nil {
		return s
	}
	ps := in.pkgSummary(fn.Pkg().Path())
	if ps == nil {
		return nil
	}
	return ps.Funcs[fn.FullName()]
}

// pkgSummary resolves a dependency package's summary set: from its loaded
// source unit when available (standalone / analysistest loads), else from
// the vetx blob cmd/go carried over (unitchecker mode).
func (in *Info) pkgSummary(path string) *PkgSummary {
	if ps, ok := in.depMemo[path]; ok {
		return ps
	}
	// Mark in-progress before recursing so an unexpected import cycle
	// degrades to "unknown package" instead of deadlocking on unit caches.
	in.depMemo[path] = nil
	var ps *PkgSummary
	if du := in.Unit.DepUnits[path]; du != nil && du != in.Unit {
		if di, err := Summarize(du); err == nil {
			ps = di.Export()
		}
	}
	if ps == nil && in.Unit.DepBlob != nil {
		if blob := in.Unit.DepBlob(path); blob != nil {
			ps, _ = DecodeSummary(blob)
		}
	}
	in.depMemo[path] = ps
	return ps
}

var cleanSummary = &FuncSummary{}

// knownSummary is the built-in allowlist for standard-library functions:
// the packages the hot paths legitimately use are alloc-free and
// non-blocking, sync wait primitives block, and everything else is
// unknown (nil).
func knownSummary(fn *types.Func) *FuncSummary {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	switch pkg.Path() {
	case "sync/atomic", "math", "math/bits", "unsafe":
		return cleanSummary
	case "errors":
		switch fn.Name() {
		case "Is", "As", "Unwrap":
			return cleanSummary
		}
	case "sync":
		recv := recvTypeName(fn)
		switch fn.Name() {
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock", "RLocker":
			return cleanSummary
		case "Load", "Delete":
			if recv == "Map" { // lookups don't allocate; Store and friends do
				return cleanSummary
			}
		case "Add", "Done":
			if recv == "WaitGroup" {
				return cleanSummary
			}
		case "Signal", "Broadcast":
			if recv == "Cond" {
				return cleanSummary
			}
		case "Wait":
			return &FuncSummary{
				Blocks:    true,
				BlockWhat: "sync." + recv + ".Wait",
				BlockPos:  "sync",
			}
		}
	}
	return nil
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// ChainStrings renders summary frames plus the terminal construct into
// Diagnostic.Chain entries ("core.helper at manager.go:120", outermost
// call first, offending construct last).
func ChainStrings(frames []SummaryFrame, what, pos string) []string {
	out := make([]string, 0, len(frames)+1)
	for _, f := range frames {
		out = append(out, f.Name+" at "+f.Pos)
	}
	if what != "" {
		out = append(out, what+" at "+pos)
	}
	return out
}

// ViaSuffix renders a call chain into a message suffix so golden `// want`
// patterns (and humans reading one-line output) see the full path:
// " (via core.mid at a.go:5 -> core.leaf at b.go:7)".
func ViaSuffix(frames []SummaryFrame) string {
	if len(frames) == 0 {
		return ""
	}
	parts := make([]string, len(frames))
	for i, f := range frames {
		parts[i] = f.Name + " at " + f.Pos
	}
	return " (via " + strings.Join(parts, " -> ") + ")"
}

// PrependFrame extends a callee chain with the call-site frame, copying so
// summaries never alias each other's chains.
func PrependFrame(f SummaryFrame, chain []SummaryFrame) []SummaryFrame {
	out := make([]SummaryFrame, 0, len(chain)+1)
	out = append(out, f)
	return append(out, chain...)
}

// unknownCallWhat is the conservative description of a call whose summary
// is unavailable.
func unknownCallWhat(fn *types.Func) string {
	if fn.Pkg() == nil {
		// Universe-scope methods (error.Error, and little else) have no
		// package; they are dynamic calls with unknowable behavior.
		return fmt.Sprintf("dynamic call to %s (unknown allocation behavior)", fn.Name())
	}
	return fmt.Sprintf("call into %s (unknown allocation behavior)", fn.Pkg().Path())
}
