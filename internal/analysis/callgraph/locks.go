package callgraph

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// LockDecl is one //adsm:lock annotated mutex field: a name, a level in
// the acquisition order, and whether it is a nowait leaf that must never
// be held across blocking operations.
type LockDecl struct {
	Name   string
	Level  int
	Nowait bool
}

// ParseLockDirective parses the payload of `//adsm:lock <name> <level>
// [nowait]`, returning a non-empty problem description on malformed input.
func ParseLockDirective(rest string) (LockDecl, string) {
	fields := strings.Fields(rest)
	if len(fields) < 2 || len(fields) > 3 {
		return LockDecl{}, "want `//adsm:lock <name> <level> [nowait]`"
	}
	level, err := strconv.Atoi(fields[1])
	if err != nil {
		return LockDecl{}, "level must be an integer"
	}
	decl := LockDecl{Name: fields[0], Level: level}
	if len(fields) == 3 {
		if fields[2] != "nowait" {
			return LockDecl{}, "third word must be `nowait`"
		}
		decl.Nowait = true
	}
	return decl, ""
}

// collectLocks gathers the package's annotated mutex fields, keyed by the
// field object. Malformed directives are skipped here; the lockorder
// analyzer reports them.
func collectLocks(unit *analysis.Unit) map[types.Object]LockDecl {
	locks := map[types.Object]LockDecl{}
	for _, file := range unit.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				rest, ok := analysis.Directive(field.Doc, "lock")
				if !ok {
					rest, ok = analysis.Directive(field.Comment, "lock")
				}
				if !ok {
					continue
				}
				decl, perr := ParseLockDirective(rest)
				if perr != "" {
					continue
				}
				for _, name := range field.Names {
					if obj := unit.TypesInfo.Defs[name]; obj != nil {
						locks[obj] = decl
					}
				}
			}
			return true
		})
	}
	return locks
}

// LockOp recognizes m.<field>.<op>() where op is a sync mutex method,
// returning the field object and operation name ("Lock", "RUnlock", ...).
func LockOp(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, ""
	}
	// The receiver must itself be a selector or identifier naming a
	// mutex-typed variable/field.
	var obj types.Object
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	case *ast.Ident:
		obj = info.Uses[x]
	default:
		return nil, ""
	}
	if obj == nil {
		return nil, ""
	}
	// Confirm the method belongs to the sync package (Mutex/RWMutex).
	if fn := analysis.CalleeFunc(info, call); fn != nil {
		if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return nil, ""
		}
	}
	return obj, op
}

// isAcquireOp reports whether a lock operation takes the lock.
func isAcquireOp(op string) bool {
	switch op {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return true
	}
	return false
}
