package callgraph

import (
	"go/ast"
	"go/types"
)

// The gmac Session host-access methods, mapped to the index of the
// gmac.Ptr argument they touch. The modecheck analyzer and the summary
// engine share these tables so "what counts as a host write" has one
// definition.
var (
	hostWriteMethods = map[string]int{
		"HostWrite":      0, // HostWrite(p Ptr, src []byte)
		"Memset":         0, // Memset(p Ptr, b byte, n int64)
		"MemcpyToShared": 0, // MemcpyToShared(dst Ptr, src []byte)
		"MemcpyShared":   0, // MemcpyShared(dst, src Ptr, n int64): dst written
	}
	hostReadMethods = map[string]int{
		"HostRead":         0, // HostRead(p Ptr, ...)
		"MemcpyFromShared": 1, // MemcpyFromShared(dst []byte, src Ptr)
		"MemcpyShared":     1, // src read
	}
)

// IsGmacPtr reports whether t is the shared-pointer type gmac.Ptr (keyed
// on the package *name* so the analyzers' golden-test stub qualifies).
func IsGmacPtr(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Ptr" && obj.Pkg() != nil && obj.Pkg().Name() == "gmac"
}

// PtrEffect is one host access a call performs on a gmac.Ptr argument.
type PtrEffect struct {
	Arg   ast.Expr       // the Ptr-typed argument expression
	Write bool           // host write vs host read
	What  string         // method name, e.g. "HostWrite"
	Chain []SummaryFrame // empty for direct session methods
	Pos   string         // where the underlying access sits
}

// PtrEffects classifies one call's host accesses to gmac.Ptr arguments:
// direct Session methods (HostWrite, Memset, ...) by name, and calls to
// helpers whose summaries declare PtrWrites/PtrReads on a parameter.
func (in *Info) PtrEffects(call *ast.CallExpr) []PtrEffect {
	var out []PtrEffect
	info := in.Unit.TypesInfo
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		if i, ok := hostWriteMethods[name]; ok {
			if arg := ptrArgAt(info, call, i); arg != nil {
				out = append(out, PtrEffect{Arg: arg, Write: true, What: name, Pos: short(in.Unit.Fset, call.Pos())})
			}
		}
		if i, ok := hostReadMethods[name]; ok {
			if arg := ptrArgAt(info, call, i); arg != nil {
				out = append(out, PtrEffect{Arg: arg, Write: false, What: name, Pos: short(in.Unit.Fset, call.Pos())})
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	for _, e := range in.resolve(call) {
		s := in.Summary(e.Callee)
		if s == nil {
			continue
		}
		frame := in.Frame(e.Callee, call.Pos())
		for _, pe := range s.PtrWrites {
			if arg := ptrArgAt(info, call, pe.Index); arg != nil {
				out = append(out, PtrEffect{Arg: arg, Write: true, What: pe.What,
					Chain: PrependFrame(frame, pe.Chain), Pos: pe.Pos})
			}
		}
		for _, pe := range s.PtrReads {
			if arg := ptrArgAt(info, call, pe.Index); arg != nil {
				out = append(out, PtrEffect{Arg: arg, Write: false, What: pe.What,
					Chain: PrependFrame(frame, pe.Chain), Pos: pe.Pos})
			}
		}
		if len(out) > 0 {
			break // one resolved callee's effects suffice
		}
	}
	return out
}

// ptrArgAt returns call.Args[i] when it exists and is gmac.Ptr-typed.
func ptrArgAt(info *types.Info, call *ast.CallExpr, i int) ast.Expr {
	if i < 0 || i >= len(call.Args) {
		return nil
	}
	arg := call.Args[i]
	if t := info.TypeOf(arg); t != nil && IsGmacPtr(t) {
		return arg
	}
	return nil
}

// ptrParams maps a function's gmac.Ptr-typed parameter objects to their
// signature indices (methods count parameters only, not the receiver).
func ptrParams(fn *types.Func) map[types.Object]int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := map[types.Object]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if IsGmacPtr(p.Type()) {
			out[p] = i
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
