package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// LaneEnter is one lane-entering event in a function body that is not
// followed by a dominated exit: either a direct EnterLane/EnterLaneAt
// call (Callee nil) or a call to a wrapper whose summary enters a lane.
type LaneEnter struct {
	Pos      token.Pos
	Callee   *types.Func    // nil for a direct EnterLane call
	Chain    []SummaryFrame // wrapper path: first frame is the callee
	EnterPos string         // where the underlying EnterLane sits
}

// IsLaneMethodCall reports whether call invokes a *method* with one of the
// given names (EnterLane and friends are methods of sim.Clock; requiring a
// method receiver avoids matching unrelated local functions).
func IsLaneMethodCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	matched := false
	for _, name := range names {
		if sel.Sel.Name == name {
			matched = true
			break
		}
	}
	if !matched {
		return false
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// laneEnterOf classifies a call as a lane-entering event: a direct
// EnterLane/EnterLaneAt, or a call to a function whose summary says
// calling it leaves a lane open.
func (in *Info) laneEnterOf(call *ast.CallExpr) (enter bool, le LaneEnter) {
	if IsLaneMethodCall(in.Unit.TypesInfo, call, "EnterLane", "EnterLaneAt") {
		return true, LaneEnter{Pos: call.Pos()}
	}
	for _, e := range in.resolve(call) {
		s := in.Summary(e.Callee)
		if s == nil || !s.LaneEnters {
			continue
		}
		return true, LaneEnter{
			Pos:      call.Pos(),
			Callee:   e.Callee,
			Chain:    PrependFrame(in.Frame(e.Callee, call.Pos()), s.LaneChain),
			EnterPos: s.LanePos,
		}
	}
	return false, LaneEnter{}
}

// laneExitOf classifies a call as a lane-exiting event: a direct ExitLane
// or a call to a helper whose summary exits a lane.
func (in *Info) laneExitOf(call *ast.CallExpr) bool {
	if IsLaneMethodCall(in.Unit.TypesInfo, call, "ExitLane") {
		return true
	}
	for _, e := range in.resolve(call) {
		if s := in.Summary(e.Callee); s != nil && s.LaneExits {
			return true
		}
	}
	return false
}

// UnpairedLaneEnters returns, in source order, every lane-entering event
// in body with no dominated exit: no `defer ...ExitLane()` (or deferred
// exit helper) later in the same block, and no exit statement before a
// return. Nested function literals are separate functions and are not
// descended into.
func (in *Info) UnpairedLaneEnters(body *ast.BlockStmt) []LaneEnter {
	paired := map[*ast.CallExpr]bool{}
	forEachBlock(body, func(list []ast.Stmt) {
		in.pairBlock(list, paired)
	})
	var out []LaneEnter
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if enter, le := in.laneEnterOf(call); enter && !paired[call] {
			out = append(out, le)
		}
		return true
	})
	return out
}

// forEachBlock invokes f on every statement list in the function body,
// without descending into nested function literals.
func forEachBlock(body *ast.BlockStmt, f func([]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			f(n.List)
		case *ast.CaseClause:
			f(n.Body)
		case *ast.CommClause:
			f(n.Body)
		}
		return true
	})
}

// pairBlock pairs lane-entering statements with following exit/defer
// statements in one statement list.
func (in *Info) pairBlock(list []ast.Stmt, paired map[*ast.CallExpr]bool) {
	for i, stmt := range list {
		enter := in.enterCall(stmt)
		if enter == nil {
			continue
		}
		for _, later := range list[i+1:] {
			if d, ok := later.(*ast.DeferStmt); ok && in.laneExitOf(d.Call) {
				paired[enter] = true
				break
			}
			if in.containsExit(later) {
				paired[enter] = true
				break
			}
			if containsReturn(later) {
				break // a return path escapes before the exit
			}
		}
	}
}

// enterCall returns the lane-entering call when stmt is exactly such a
// call statement (the supported pairing shape).
func (in *Info) enterCall(stmt ast.Stmt) *ast.CallExpr {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	if enter, _ := in.laneEnterOf(call); !enter {
		return nil
	}
	return call
}

// containsExit reports whether the statement contains a lane-exiting call
// outside nested function literals.
func (in *Info) containsExit(stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && in.laneExitOf(call) {
			found = true
		}
		return !found
	})
	return found
}

// containsReturn reports whether the statement contains a return outside
// nested function literals.
func containsReturn(stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if _, ok := n.(*ast.ReturnStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// laneUsage reports whether the body contains any lane-entering or
// lane-exiting events at all (outside nested function literals).
func (in *Info) laneUsage(body *ast.BlockStmt) (enters, exits bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if e, _ := in.laneEnterOf(call); e {
			enters = true
		}
		if in.laneExitOf(call) {
			exits = true
		}
		return true
	})
	return enters, exits
}
