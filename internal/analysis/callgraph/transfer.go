package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"

	"repro/internal/analysis"
)

// InspectInline visits the nodes of a function body that execute as part
// of that function: like ast.Inspect, but function literals are descended
// into only when they run inline (immediately invoked, or immediately
// deferred — `defer func(){...}()` executes on this function's exit).
// Goroutine bodies are skipped; their arguments are still evaluated here.
func InspectInline(root ast.Node, f func(ast.Node) bool) {
	var walk func(ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if !f(n) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a stored closure runs on its own schedule
		case *ast.GoStmt:
			if _, ok := n.Call.Fun.(*ast.FuncLit); !ok {
				ast.Inspect(n.Call.Fun, walk)
			}
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, walk)
				for _, arg := range n.Call.Args {
					ast.Inspect(arg, walk)
				}
				return false
			}
			return true // `defer x.M()` runs at function exit: inline
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, walk)
				for _, arg := range n.Args {
					ast.Inspect(arg, walk)
				}
				return false
			}
			return true
		}
		return true
	}
	ast.Inspect(root, walk)
}

// fixpoint computes a FuncSummary for every local node: Tarjan SCC
// condensation of the intra-package call graph, then bottom-up transfer
// in reverse topological order, iterating inside each SCC until the
// component's summaries stop changing (with a cap, so even a
// non-monotone corner — e.g. lane pairing flipping as wrappers resolve —
// terminates).
func (in *Info) fixpoint() {
	for _, n := range in.Nodes {
		in.local[n.Fn.FullName()] = in.baseSummary(n)
	}
	for _, scc := range in.sccs() {
		maxIter := len(scc)*2 + 2
		for iter := 0; iter < maxIter; iter++ {
			changed := false
			for _, n := range scc {
				key := n.Fn.FullName()
				next := in.summarizeNode(n)
				if !reflect.DeepEqual(next, in.local[key]) {
					in.local[key] = next
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// sccs returns the strongly connected components of the local call graph
// in reverse topological order: every component is emitted after all
// components it calls into.
func (in *Info) sccs() [][]*Node {
	index := map[*Node]int{}
	lowlink := map[*Node]int{}
	onStack := map[*Node]bool{}
	var stack []*Node
	var out [][]*Node
	next := 0

	localCallees := func(n *Node) []*Node {
		var cs []*Node
		for _, e := range n.Edges {
			if c := in.byFn[e.Callee]; c != nil {
				cs = append(cs, c)
			}
		}
		return cs
	}

	var strongconnect func(n *Node)
	strongconnect = func(n *Node) {
		index[n] = next
		lowlink[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, c := range localCallees(n) {
			if _, seen := index[c]; !seen {
				strongconnect(c)
				if lowlink[c] < lowlink[n] {
					lowlink[n] = lowlink[c]
				}
			} else if onStack[c] && index[c] < lowlink[n] {
				lowlink[n] = index[c]
			}
		}
		if lowlink[n] == index[n] {
			var scc []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, n := range in.Nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return out
}

// baseSummary seeds a node's summary with its declaration-level facts
// (annotations) before the fixpoint folds in body and callee facts, so
// mutually recursive functions see each other optimistically.
func (in *Info) baseSummary(n *Node) *FuncSummary {
	fset := in.Unit.Fset
	s := &FuncSummary{}
	_, s.NoAlloc = analysis.FuncDirective(fset, n.File, n.Decl, "noalloc")
	_, s.Cold = analysis.FuncDirective(fset, n.File, n.Decl, "cold")
	_, s.LaneWrapper = analysis.FuncDirective(fset, n.File, n.Decl, "lanewrapper")
	if s.Cold {
		s.Allocates = true
		s.AllocWhat = "//adsm:cold function allocates by design"
		s.AllocPos = short(fset, n.Decl.Pos())
	}
	if _, blocking := analysis.FuncDirective(fset, n.File, n.Decl, "blocking"); blocking {
		s.Blocks = true
		s.BlockWhat = "declared //adsm:blocking"
		s.BlockPos = short(fset, n.Decl.Pos())
	}
	if s.LaneWrapper {
		s.LaneEnters = true
		s.LanePos = short(fset, n.Decl.Pos())
	}
	return s
}

// summarizeNode computes one node's full summary from its annotations,
// its body, and the current summaries of its callees.
func (in *Info) summarizeNode(n *Node) *FuncSummary {
	s := in.baseSummary(n)
	if n.Decl.Body == nil {
		return s
	}
	in.allocFacts(n, s)
	in.blockFacts(n, s)
	in.lockFacts(n, s)
	in.laneFacts(n, s)
	in.modeFacts(n, s)
	return s
}

// allocFacts: a function allocates if its own body contains an allocating
// construct, or it calls a callee that (transitively) allocates, or it
// calls something whose behavior is unknown. //adsm:noalloc functions are
// trusted alloc-free here — violations are reported at their definition
// by the noalloc analyzer, not propagated to every caller.
func (in *Info) allocFacts(n *Node, s *FuncSummary) {
	if s.NoAlloc || s.Cold {
		return
	}
	if found := AllocWalk(in.Unit.TypesInfo, n.Decl.Body); len(found) > 0 {
		s.Allocates = true
		s.AllocWhat = found[0].What
		s.AllocPos = short(in.Unit.Fset, found[0].Pos)
		return
	}
	for _, e := range n.Edges {
		if obj, _ := LockOp(in.Unit.TypesInfo, e.Call); obj != nil {
			continue // sync mutex ops are alloc-free
		}
		cs := in.Summary(e.Callee)
		frame := in.Frame(e.Callee, e.Call.Pos())
		switch {
		case cs == nil:
			s.Allocates = true
			s.AllocWhat = unknownCallWhat(e.Callee)
			s.AllocPos = short(in.Unit.Fset, e.Call.Pos())
			s.AllocChain = []SummaryFrame{frame}
			return
		case cs.Allocates:
			s.Allocates = true
			s.AllocWhat = cs.AllocWhat
			s.AllocPos = cs.AllocPos
			s.AllocChain = PrependFrame(frame, cs.AllocChain)
			return
		}
	}
}

// blockFacts: a function may block if its body performs a channel
// operation, or a callee (transitively) blocks.
func (in *Info) blockFacts(n *Node, s *FuncSummary) {
	if s.Blocks {
		return // declared //adsm:blocking
	}
	if what, pos, ok := directBlock(in.Unit.TypesInfo, n.Decl.Body); ok {
		s.Blocks = true
		s.BlockWhat = what
		s.BlockPos = short(in.Unit.Fset, pos)
		return
	}
	for _, e := range n.Edges {
		cs := in.Summary(e.Callee)
		if cs == nil || !cs.Blocks {
			continue
		}
		s.Blocks = true
		s.BlockWhat = cs.BlockWhat
		s.BlockPos = cs.BlockPos
		s.BlockChain = PrependFrame(in.Frame(e.Callee, e.Call.Pos()), cs.BlockChain)
		return
	}
}

// directBlock finds the first potentially-blocking channel operation in
// the body: send, receive, select, or range over a channel.
func directBlock(info *types.Info, body *ast.BlockStmt) (what string, pos token.Pos, ok bool) {
	InspectInline(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			what, pos, ok = "channel send", n.Pos(), true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				what, pos, ok = "channel receive", n.Pos(), true
			}
		case *ast.SelectStmt:
			what, pos, ok = "select", n.Pos(), true
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					what, pos, ok = "range over channel", n.Pos(), true
				}
			}
		}
		return !ok
	})
	return what, pos, ok
}

// lockFacts: the annotated locks this function may acquire — its own
// acquire operations plus everything its callees acquire.
func (in *Info) lockFacts(n *Node, s *FuncSummary) {
	have := map[string]bool{}
	add := func(u LockUse) {
		if !have[u.Name] {
			have[u.Name] = true
			s.Acquires = append(s.Acquires, u)
		}
	}
	for _, e := range n.Edges {
		if obj, op := LockOp(in.Unit.TypesInfo, e.Call); obj != nil {
			if decl, annotated := in.Locks[obj]; annotated && isAcquireOp(op) {
				add(LockUse{Name: decl.Name, Level: decl.Level, Nowait: decl.Nowait,
					Pos: short(in.Unit.Fset, e.Call.Pos())})
			}
			continue
		}
		cs := in.Summary(e.Callee)
		if cs == nil {
			continue
		}
		frame := in.Frame(e.Callee, e.Call.Pos())
		for _, u := range cs.Acquires {
			add(LockUse{Name: u.Name, Level: u.Level, Nowait: u.Nowait, Pos: u.Pos,
				Chain: PrependFrame(frame, u.Chain)})
		}
	}
}

// laneFacts: calling this function enters a lane when it has an
// EnterLane (direct or via a wrapper) with no dominated exit — the
// deliberate shape for //adsm:lanewrapper helpers — and exits one when it
// contains exit events and no enters.
func (in *Info) laneFacts(n *Node, s *FuncSummary) {
	enters, exits := in.laneUsage(n.Decl.Body)
	if !s.LaneEnters {
		if unpaired := in.UnpairedLaneEnters(n.Decl.Body); len(unpaired) > 0 {
			le := unpaired[0]
			s.LaneEnters = true
			if le.Callee == nil {
				s.LanePos = short(in.Unit.Fset, le.Pos)
			} else {
				s.LanePos = le.EnterPos
				s.LaneChain = le.Chain
			}
		}
	} else if s.LaneWrapper {
		// Prefer pointing at the actual EnterLane over the declaration.
		if unpaired := in.UnpairedLaneEnters(n.Decl.Body); len(unpaired) > 0 {
			le := unpaired[0]
			if le.Callee == nil {
				s.LanePos = short(in.Unit.Fset, le.Pos)
			} else {
				s.LanePos = le.EnterPos
				s.LaneChain = le.Chain
			}
		}
	}
	s.LaneExits = exits && !enters && !s.LaneEnters
}

// modeFacts: which gmac.Ptr parameters this function host-writes or
// host-reads, directly or through callees.
func (in *Info) modeFacts(n *Node, s *FuncSummary) {
	params := ptrParams(n.Fn)
	if len(params) == 0 {
		return
	}
	haveW := map[int]bool{}
	haveR := map[int]bool{}
	InspectInline(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, eff := range in.PtrEffects(call) {
			id, ok := ast.Unparen(eff.Arg).(*ast.Ident)
			if !ok {
				continue
			}
			idx, isParam := params[in.Unit.TypesInfo.Uses[id]]
			if !isParam {
				continue
			}
			pe := ParamEffect{Index: idx, What: eff.What, Pos: eff.Pos, Chain: eff.Chain}
			if eff.Write && !haveW[idx] {
				haveW[idx] = true
				s.PtrWrites = append(s.PtrWrites, pe)
			} else if !eff.Write && !haveR[idx] {
				haveR[idx] = true
				s.PtrReads = append(s.PtrReads, pe)
			}
		}
		return true
	})
}
