package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// AllocFinding is one allocating construct in a function body. What is the
// human-readable description ("make allocates"); analyzers prepend their
// own context ("%s is //adsm:noalloc: %s").
type AllocFinding struct {
	Pos  token.Pos
	What string
}

// AllocWalk reports every allocating construct in a function body, in
// source order. It is the single definition of "allocates" shared by the
// noalloc analyzer (which reports each finding inside annotated functions)
// and the summary engine (which takes the first finding as the function's
// direct-allocation fact).
//
// Flagged constructs: function literals (except immediately deferred
// ones, which compile to open-coded defers), go statements, defer inside
// a loop, the builtins append/make/new, map/slice/&composite literals,
// fmt calls, non-constant string concatenation, string<->[]byte/[]rune
// conversions, interface boxing, and method-value expressions.
func AllocWalk(info *types.Info, body *ast.BlockStmt) []AllocFinding {
	w := &allocWalker{info: info}
	w.stmt(body, 0)
	return w.found
}

// allocWalker carries the walk state; loopDepth tracks whether a defer
// statement sits inside a loop.
type allocWalker struct {
	info  *types.Info
	found []AllocFinding
}

func (w *allocWalker) report(pos token.Pos, format string, args ...any) {
	w.found = append(w.found, AllocFinding{Pos: pos, What: fmt.Sprintf(format, args...)})
}

// stmt dispatches on statement shape so that defer and go statements can
// be treated specially before their sub-expressions are scanned.
func (w *allocWalker) stmt(s ast.Stmt, loopDepth int) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			w.stmt(sub, loopDepth)
		}
	case *ast.GoStmt:
		w.report(s.Pos(), "go statement allocates a goroutine")
	case *ast.DeferStmt:
		if loopDepth > 0 {
			w.report(s.Pos(), "defer inside a loop heap-allocates")
		}
		// An immediately deferred func literal is an open-coded defer:
		// allowed, but its body still runs on the hot path, so scan it.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmt(lit.Body, 0)
			for _, arg := range s.Call.Args {
				w.expr(arg)
			}
			w.boxedArgs(s.Call)
		} else {
			// `defer x.M()` is a direct call, not a method value.
			w.call(s.Call)
		}
	case *ast.ForStmt:
		w.stmt(s.Init, loopDepth)
		w.exprOpt(s.Cond)
		w.stmt(s.Post, loopDepth)
		w.stmt(s.Body, loopDepth+1)
	case *ast.RangeStmt:
		w.exprOpt(s.Key)
		w.exprOpt(s.Value)
		w.expr(s.X)
		w.stmt(s.Body, loopDepth+1)
	case *ast.IfStmt:
		w.stmt(s.Init, loopDepth)
		w.expr(s.Cond)
		w.stmt(s.Body, loopDepth)
		w.stmt(s.Else, loopDepth)
	case *ast.SwitchStmt:
		w.stmt(s.Init, loopDepth)
		w.exprOpt(s.Tag)
		w.stmt(s.Body, loopDepth)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, loopDepth)
		w.stmt(s.Assign, loopDepth)
		w.stmt(s.Body, loopDepth)
	case *ast.SelectStmt:
		w.stmt(s.Body, loopDepth)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		for _, sub := range s.Body {
			w.stmt(sub, loopDepth)
		}
	case *ast.CommClause:
		w.stmt(s.Comm, loopDepth)
		for _, sub := range s.Body {
			w.stmt(sub, loopDepth)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, loopDepth)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
		w.boxed(s.Value, chanElem(w.info, s.Chan))
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				w.boxed(s.Rhs[i], w.info.TypeOf(s.Lhs[i]))
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, v := range vs.Values {
				w.expr(v)
				if i < len(vs.Names) {
					w.boxed(v, w.info.TypeOf(vs.Names[i]))
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		// Unknown statement kinds: scan conservatively for expressions.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e)
				return false
			}
			return true
		})
	}
}

func (w *allocWalker) exprOpt(e ast.Expr) {
	if e != nil {
		w.expr(e)
	}
}

// expr reports allocating expressions, recursing into sub-expressions.
func (w *allocWalker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.FuncLit:
		w.report(e.Pos(), "function literal allocates a closure; hoist it to a named function")
		// Do not descend: the closure itself is the finding.
	case *ast.CompositeLit:
		w.compositeLit(e, false)
	case *ast.UnaryExpr:
		if lit, ok := e.X.(*ast.CompositeLit); ok && e.Op == token.AND {
			w.compositeLit(lit, true)
			return
		}
		w.expr(e.X)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
		if e.Op == token.ADD && !isConstExpr(w.info, e) && isString(w.info.TypeOf(e.X)) {
			w.report(e.Pos(), "string concatenation allocates")
		}
	case *ast.CallExpr:
		w.call(e)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
		if sel, ok := w.info.Selections[e]; ok && sel.Kind() == types.MethodVal {
			// x.M in non-call position binds the receiver: a closure.
			// Call positions never reach here (call() skips the Fun
			// selector), so any method value seen here allocates.
			w.report(e.Pos(), "method value %s binds its receiver and allocates", e.Sel.Name)
		}
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.IndexListExpr:
		w.expr(e.X)
		for _, i := range e.Indices {
			w.expr(i)
		}
	case *ast.SliceExpr:
		w.expr(e.X)
		w.exprOpt(e.Low)
		w.exprOpt(e.High)
		w.exprOpt(e.Max)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.KeyValueExpr:
		w.expr(e.Key)
		w.expr(e.Value)
	case *ast.Ident, *ast.BasicLit, *ast.ArrayType, *ast.MapType,
		*ast.ChanType, *ast.FuncType, *ast.StructType, *ast.InterfaceType:
	}
}

func (w *allocWalker) compositeLit(lit *ast.CompositeLit, addressed bool) {
	t := w.info.TypeOf(lit)
	switch t.Underlying().(type) {
	case *types.Map:
		w.report(lit.Pos(), "map literal allocates")
	case *types.Slice:
		w.report(lit.Pos(), "slice literal allocates its backing array")
	default:
		if addressed {
			w.report(lit.Pos(), "&composite literal may heap-allocate")
		}
	}
	for _, elt := range lit.Elts {
		w.expr(elt)
	}
}

// call handles call expressions: builtins, fmt, conversions, and interface
// boxing of arguments.
func (w *allocWalker) call(call *ast.CallExpr) {
	info := w.info

	switch {
	case analysis.IsBuiltinCall(info, call, "append"):
		w.report(call.Pos(), "append may grow its backing array")
	case analysis.IsBuiltinCall(info, call, "make"):
		w.report(call.Pos(), "make allocates")
	case analysis.IsBuiltinCall(info, call, "new"):
		w.report(call.Pos(), "new allocates")
	}

	// Type conversion?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		w.conversion(call, tv.Type)
		w.expr(call.Args[0])
		return
	}

	if fn := analysis.CalleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "fmt" {
		w.report(call.Pos(), "fmt call allocates; move formatting to a cold helper")
		// fmt's variadic ...any boxing is subsumed by this finding.
		for _, arg := range call.Args {
			w.expr(arg)
		}
		return
	}

	// Don't treat the callee selector as a method value.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		w.expr(fun.X)
	case *ast.Ident:
	default:
		w.expr(call.Fun)
	}
	for _, arg := range call.Args {
		w.expr(arg)
	}
	w.boxedArgs(call)
}

// conversion flags allocating conversions: string<->[]byte/[]rune and
// concrete-to-interface.
func (w *allocWalker) conversion(call *ast.CallExpr, target types.Type) {
	src := w.info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if isConstExpr(w.info, call) {
		return
	}
	switch {
	case isString(target) && isByteOrRuneSlice(src):
		w.report(call.Pos(), "[]byte/[]rune-to-string conversion allocates")
	case isByteOrRuneSlice(target) && isString(src):
		w.report(call.Pos(), "string-to-slice conversion allocates")
	default:
		w.boxed(call.Args[0], target)
	}
}

// boxedArgs flags concrete arguments passed in interface-typed parameters.
func (w *allocWalker) boxedArgs(call *ast.CallExpr) {
	tv, ok := w.info.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	if call.Ellipsis.IsValid() {
		// f(xs...) passes the slice through: no per-element boxing.
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		w.boxed(arg, pt)
	}
}

// boxed reports when a concrete (non-interface) value flows into an
// interface-typed slot.
func (w *allocWalker) boxed(e ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	src := w.info.TypeOf(e)
	if src == nil || types.IsInterface(src) {
		return
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	// Pointers, chans, maps, funcs and unsafe.Pointer fit in the iface
	// word without allocating.
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return
	}
	if isConstExpr(w.info, e) {
		// Constants under 256 (and small zero values) use the runtime's
		// static boxes; be permissive for constants.
		return
	}
	w.report(e.Pos(), "converting %s to interface %s allocates (boxing)", src, target)
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

func chanElem(info *types.Info, ch ast.Expr) types.Type {
	t := info.TypeOf(ch)
	if t == nil {
		return nil
	}
	c, ok := t.Underlying().(*types.Chan)
	if !ok {
		return nil
	}
	return c.Elem()
}
