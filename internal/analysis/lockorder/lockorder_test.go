package lockorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

func TestBasic(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "lockorder/basic")
}

func TestChain(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "lockorder/chain")
}
