// Package lockorder enforces the internal/core lock hierarchy statically.
//
// The Manager's documented lock discipline (manager.go) is a strict
// order: callMu before per-Object mu before treeMu before the leaf locks
// (statsMu, evictMu, rollingCache.mu, introMu), with the leaves never
// nesting anything and never being held across waits. A violation is a
// potential deadlock that -race cannot see (races and deadlocks are
// different bugs) and that stress tests only catch when the interleaving
// cooperates.
//
// Mutex fields opt in with a directive on the field declaration:
//
//	//adsm:lock <name> <level> [nowait]
//	mu sync.Mutex
//
// Levels ascend in acquisition order: while any lock of level L is held,
// only locks of level strictly greater than L may be acquired. A lock
// marked nowait must not be held across potentially-blocking operations:
// channel sends/receives, select, range-over-channel, sync.WaitGroup.Wait,
// sync.Cond.Wait, or calls to functions annotated //adsm:blocking.
//
// The held-set analysis is an approximate CFG walk: branch bodies are
// analyzed against a copy of the held-lock set, a deferred Unlock keeps
// its lock held to function end, and function literals start with an
// empty held set (goroutines do not inherit the spawner's locks). Call
// sites are then checked against the callgraph engine's bottom-up
// summaries: a call made while locks are held is a diagnostic when the
// callee — at any depth, across module-local package boundaries — acquires
// an annotated lock at a level not strictly above every held one, or may
// block while a nowait lock is held. Diagnostics carry the call chain to
// the offending acquire or wait.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "enforce //adsm:lock acquisition order and nowait discipline",
	Run:  run,
}

// lockInfo is one annotated mutex field.
type lockInfo struct {
	name   string
	level  int
	nowait bool
}

// held is one acquired lock in flight.
type held struct {
	obj      types.Object
	info     lockInfo
	pos      token.Pos
	deferred bool // released by defer: held to function end
}

func run(pass *analysis.Pass) error {
	locks, err := lockFields(pass)
	if err != nil {
		return err
	}
	if len(locks) == 0 {
		// No annotated locks means nothing can ever be held here, and every
		// check below is conditioned on a non-empty held set.
		return nil
	}
	info, err := callgraph.Of(pass)
	if err != nil {
		return err
	}
	blocking := blockingFuncs(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c := &checker{pass: pass, info: info, locks: locks, blocking: blocking}
			c.block(fn.Body.List, nil)
		}
	}
	return nil
}

// lockFields collects //adsm:lock annotations on struct fields, keyed by
// the field's types.Object.
func lockFields(pass *analysis.Pass) (map[types.Object]lockInfo, error) {
	locks := map[types.Object]lockInfo{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				rest, ok := analysis.Directive(field.Doc, "lock")
				if !ok {
					rest, ok = analysis.Directive(field.Comment, "lock")
				}
				if !ok {
					continue
				}
				info, perr := parseLockDirective(rest)
				if perr != "" {
					pass.Reportf(field.Pos(), "malformed //adsm:lock directive: %s", perr)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						locks[obj] = info
					}
				}
			}
			return true
		})
	}
	return locks, nil
}

func parseLockDirective(rest string) (lockInfo, string) {
	fields := strings.Fields(rest)
	if len(fields) < 2 || len(fields) > 3 {
		return lockInfo{}, "want `//adsm:lock <name> <level> [nowait]`"
	}
	level, err := strconv.Atoi(fields[1])
	if err != nil {
		return lockInfo{}, "level must be an integer"
	}
	info := lockInfo{name: fields[0], level: level}
	if len(fields) == 3 {
		if fields[2] != "nowait" {
			return lockInfo{}, "third word must be `nowait`"
		}
		info.nowait = true
	}
	return info, ""
}

// blockingFuncs collects functions annotated //adsm:blocking in this
// package.
func blockingFuncs(pass *analysis.Pass) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := analysis.FuncDirective(pass.Fset, file, fn, "blocking"); !ok {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				out[obj] = true
			}
		}
	}
	return out
}

// checker walks one function body threading the held-lock list.
type checker struct {
	pass     *analysis.Pass
	info     *callgraph.Info
	locks    map[types.Object]lockInfo
	blocking map[*types.Func]bool
}

// block analyzes a statement list against the incoming held set and
// returns the outgoing one.
func (c *checker) block(list []ast.Stmt, h []held) []held {
	for _, s := range list {
		h = c.stmt(s, h)
	}
	return h
}

func (c *checker) stmt(s ast.Stmt, h []held) []held {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		return c.block(s.List, h)
	case *ast.ExprStmt:
		return c.exprEvents(s.X, h)
	case *ast.DeferStmt:
		if obj, op := lockOp(c.pass, s.Call); obj != nil && (op == "Unlock" || op == "RUnlock") {
			for i := len(h) - 1; i >= 0; i-- {
				if h[i].obj == obj && !h[i].deferred {
					h[i].deferred = true
					break
				}
			}
			return h
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// A deferred closure may unlock: treat any lock it unlocks as
			// deferred-released.
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if obj, op := lockOp(c.pass, call); obj != nil && (op == "Unlock" || op == "RUnlock") {
					for i := len(h) - 1; i >= 0; i-- {
						if h[i].obj == obj && !h[i].deferred {
							h[i].deferred = true
							break
						}
					}
				}
				return true
			})
		}
		return h
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			h = c.exprEvents(e, h)
		}
		return h
	case *ast.IfStmt:
		h = c.stmt(s.Init, h)
		h = c.exprEvents(s.Cond, h)
		c.stmt(s.Body, clone(h))
		c.stmt(s.Else, clone(h))
		return h
	case *ast.ForStmt:
		h = c.stmt(s.Init, h)
		if s.Cond != nil {
			h = c.exprEvents(s.Cond, h)
		}
		c.block(s.Body.List, clone(h))
		return h
	case *ast.RangeStmt:
		if t := c.pass.TypesInfo.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				c.checkNowait(s.Pos(), "range over channel", h)
			}
		}
		c.block(s.Body.List, clone(h))
		return h
	case *ast.SwitchStmt:
		h = c.stmt(s.Init, h)
		if s.Tag != nil {
			h = c.exprEvents(s.Tag, h)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.block(cc.Body, clone(h))
			}
		}
		return h
	case *ast.TypeSwitchStmt:
		h = c.stmt(s.Init, h)
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.block(cc.Body, clone(h))
			}
		}
		return h
	case *ast.SelectStmt:
		c.checkNowait(s.Pos(), "select", h)
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				c.block(cc.Body, clone(h))
			}
		}
		return h
	case *ast.SendStmt:
		c.checkNowait(s.Pos(), "channel send", h)
		return h
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, h)
	case *ast.GoStmt:
		// The goroutine body runs with its own empty held set.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.block(lit.Body.List, nil)
		}
		return h
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			h = c.exprEvents(e, h)
		}
		return h
	case *ast.DeclStmt:
		return h
	}
	return h
}

// exprEvents scans an expression for lock operations, blocking operations,
// and nested function literals, in source order.
func (c *checker) exprEvents(e ast.Expr, h []held) []held {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.block(n.Body.List, nil)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.checkNowait(n.Pos(), "channel receive", h)
			}
		case *ast.CallExpr:
			if obj, op := lockOp(c.pass, n); obj != nil {
				h = c.lockEvent(n, obj, op, h)
				return true
			}
			c.checkBlockingCall(n, h)
			c.checkCalleeSummary(n, h)
		}
		return true
	}
	ast.Inspect(e, walk)
	return h
}

// lockEvent applies one Lock/Unlock operation to the held set.
func (c *checker) lockEvent(call *ast.CallExpr, obj types.Object, op string, h []held) []held {
	info, annotated := c.locks[obj]
	if !annotated {
		return h
	}
	switch op {
	case "Lock", "RLock", "TryLock", "TryRLock":
		for _, prev := range h {
			if prev.obj == obj {
				c.pass.Reportf(call.Pos(), "lock %s acquired while already held (self-deadlock), first acquired at %s",
					info.name, c.pass.Fset.Position(prev.pos))
				return append(h, held{obj: obj, info: info, pos: call.Pos()})
			}
			if prev.info.level >= info.level {
				c.pass.Reportf(call.Pos(), "lock %s (level %d) acquired while holding %s (level %d); the ADSM lock order requires strictly ascending levels",
					info.name, info.level, prev.info.name, prev.info.level)
			}
		}
		return append(h, held{obj: obj, info: info, pos: call.Pos()})
	case "Unlock", "RUnlock":
		for i := len(h) - 1; i >= 0; i-- {
			if h[i].obj == obj && !h[i].deferred {
				return append(h[:i:i], h[i+1:]...)
			}
		}
	}
	return h
}

// checkBlockingCall flags calls that can block while a nowait lock is held:
// sync.WaitGroup.Wait, sync.Cond.Wait, and //adsm:blocking functions.
func (c *checker) checkBlockingCall(call *ast.CallExpr, h []held) {
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if c.blocking[fn] {
		c.checkNowait(call.Pos(), "call to //adsm:blocking "+fn.Name(), h)
		return
	}
	if fn.Name() == "Wait" && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		c.checkNowait(call.Pos(), "sync."+recvName(fn)+".Wait", h)
	}
}

// checkCalleeSummary checks one call site against the callee's engine
// summary while locks are held: transitive lock acquisitions must sit
// strictly above every held level, and transitively-blocking callees are
// subject to the nowait rule. Callees the local maps already cover
// (//adsm:blocking functions, sync waits) are skipped so nothing is
// reported twice; unknown callees are presumed lock-free and non-blocking
// (the noalloc analyzer is the conservative one).
func (c *checker) checkCalleeSummary(call *ast.CallExpr, h []held) {
	if len(h) == 0 {
		return
	}
	for _, e := range c.info.Callees(call) {
		fn := e.Callee
		if c.blocking[fn] {
			continue // checkBlockingCall reported it
		}
		if fn.Name() == "Wait" && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			continue // checkBlockingCall reported it
		}
		cs := c.info.Summary(fn)
		if cs == nil {
			continue
		}
		callee := callgraph.Display(fn)
		frame := c.info.Frame(fn, call.Pos())
		for _, u := range cs.Acquires {
			full := callgraph.PrependFrame(frame, u.Chain)
			for _, prev := range h {
				if prev.info.level >= u.Level {
					c.pass.ReportChainf(call.Pos(),
						callgraph.ChainStrings(full, "acquire "+u.Name, u.Pos),
						"call to %s acquires lock %s (level %d) at %s while holding %s (level %d)%s; the ADSM lock order requires strictly ascending levels",
						callee, u.Name, u.Level, u.Pos, prev.info.name, prev.info.level, callgraph.ViaSuffix(full))
				}
			}
		}
		if cs.Blocks {
			what := fmt.Sprintf("call to %s, which may block (%s at %s)%s",
				callee, cs.BlockWhat, cs.BlockPos, callgraph.ViaSuffix(callgraph.PrependFrame(frame, cs.BlockChain)))
			c.checkNowait(call.Pos(), what, h)
		}
	}
}

// checkNowait reports every held nowait lock at a blocking operation.
func (c *checker) checkNowait(pos token.Pos, what string, h []held) {
	for _, prev := range h {
		if prev.info.nowait {
			c.pass.Reportf(pos, "%s while holding %s, a nowait lock acquired at %s (no lock may be held across channel/DMA waits)",
				what, prev.info.name, c.pass.Fset.Position(prev.pos))
		}
	}
}

func clone(h []held) []held {
	out := make([]held, len(h))
	copy(out, h)
	return out
}

func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return "?"
}

// lockOp recognizes m.<field>.<op>() where op is a mutex method, returning
// the field object and operation name.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, ""
	}
	// The receiver must itself be a selector or identifier naming a
	// mutex-typed variable/field.
	var obj types.Object
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[x.Sel]
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[x]
	default:
		return nil, ""
	}
	if obj == nil {
		return nil, ""
	}
	// Confirm the method belongs to the sync package (Mutex/RWMutex).
	if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil {
		if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return nil, ""
		}
	}
	return obj, op
}
