// Package coherence flags host-side misuse of the gmac public API.
//
// ADSM's contract (Gelado et al., ASPLOS 2010, §3.1) is that consistency
// actions happen only at kernel call and return boundaries; the host side
// of that bargain is easy to violate in ways Go happily compiles:
//
//  1. Removed pre-Session wrappers. AllocFor/SafeAlloc/CallAnnotated/
//     CallSync (and the MultiContext RegisterKernelAll/AllocOn/CallSync)
//     no longer exist in the real gmac package; stubs, forks and stale
//     branches that still declare them are flagged at every call site
//     with the Session-API replacement (Alloc with options, Call with
//     options).
//
//  2. Host reads racing an async kernel. A Call(..., Async()) returns
//     before the kernel runs; reading its output (HostRead,
//     MemcpyFromShared, WriteFile) before Sync() observes stale data.
//     When the call annotates Writes(p...), only reads of those pointers
//     are flagged; an unannotated async call taints every subsequent
//     host read on that session until Sync.
//
//  3. Stale Safe pointers. Safe(p) pins the host mapping of p only until
//     the next kernel launch migrates the object; using the saved value
//     after a later Call on the same session must be re-acquired.
//
// The analysis is intra-procedural and syntactic about session identity
// (receiver expressions are compared textually), which is exactly the
// granularity at which this code is actually written.
package coherence

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the coherence analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "coherence",
	Doc:  "flag removed gmac wrappers, async host reads before Sync, and stale Safe pointers",
	Run:  run,
}

// removed maps removed pre-Session gmac method names to their
// replacements.
var removed = map[string]string{
	"AllocFor":          "Alloc(size, gmac.ForKernels(...))",
	"SafeAlloc":         "Alloc(size, gmac.Safe())",
	"CallAnnotated":     "Call(kernel, args, gmac.Writes(...))",
	"CallSync":          "Call(kernel, args) followed by Sync()",
	"RegisterKernel":    "Register(func() *gmac.Kernel {...})",
	"RegisterKernelAll": "Register(func() *gmac.Kernel {...})",
	"AllocOn":           "Alloc(size, gmac.OnDevice(dev))",
}

// hostReads are session methods that read shared memory into host space.
var hostReads = map[string]bool{
	"HostRead":         true,
	"MemcpyFromShared": true,
	"WriteFile":        true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// event is one API interaction in source order.
type event struct {
	kind  string    // "removed", "call", "async", "sync", "read", "safe", "use", "assign"
	order token.Pos // position in evaluation order (a call sorts at its closing paren, after its arguments)
	pos   ast.Node
	recv  string         // receiver expression, textually
	name  string         // method name
	args  []types.Object // identifier objects among the arguments
	write []types.Object // Writes(...) pointer objects (async calls)
	obj   types.Object   // safe/use/assign target variable
}

// checkFunc collects this function's API events in source order and runs
// the two state machines (async-before-sync, stale-safe) over them.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	events := collect(pass, body)
	// Re-order by evaluation position: a call takes effect at its closing
	// paren, after its receiver and arguments were read, so `s.Call("k",
	// args(dp))` does not count as a use of dp after the call.
	sort.SliceStable(events, func(i, j int) bool { return events[i].order < events[j].order })

	// Pass 1: async calls whose output is host-read before Sync.
	type pending struct {
		write []types.Object
		pos   ast.Node
	}
	async := map[string][]pending{} // receiver -> outstanding async calls
	for _, ev := range events {
		switch ev.kind {
		case "async":
			async[ev.recv] = append(async[ev.recv], pending{write: ev.write, pos: ev.pos})
		case "sync", "call", "removed":
			// A synchronous Call ends in Sync() (adsmCall+adsmSync), so it
			// is a completion barrier for earlier async launches too.
			delete(async, ev.recv)
		case "read":
			for _, p := range async[ev.recv] {
				if len(p.write) == 0 || intersects(p.write, ev.args) {
					pass.Reportf(ev.pos.Pos(),
						"%s on %s may observe stale data: an Async() Call at %s has not been Sync()ed",
						ev.name, ev.recv, pass.Fset.Position(p.pos.Pos()))
				}
			}
		}
	}

	// Pass 2: Safe(p) results used after a subsequent Call on the session.
	type safeVar struct {
		recv        string
		invalidated ast.Node // the Call that migrated the mapping, or nil
		reported    bool
	}
	safe := map[types.Object]*safeVar{}
	for _, ev := range events {
		switch ev.kind {
		case "safe":
			safe[ev.obj] = &safeVar{recv: ev.recv}
		case "assign":
			delete(safe, ev.obj) // reassigned: no longer a Safe result
		case "removed", "call", "async":
			for _, sv := range safe {
				if sv.recv == ev.recv && sv.invalidated == nil {
					sv.invalidated = ev.pos
				}
			}
		case "use":
			if sv, ok := safe[ev.obj]; ok && sv.invalidated != nil && !sv.reported {
				sv.reported = true
				pass.Reportf(ev.pos.Pos(),
					"%s holds a Safe() pointer acquired before the Call at %s; kernel launches may migrate the object — re-acquire with Safe()",
					ev.obj.Name(), pass.Fset.Position(sv.invalidated.Pos()))
			}
		}
	}
}

// collect walks the function body in source order, emitting events.
// Nested function literals are separate functions and are skipped (their
// own checkFunc visit handles them).
func collect(pass *analysis.Pass, body *ast.BlockStmt) []event {
	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			// v, err := recv.Safe(p) — or a reassignment of a tracked var.
			events = append(events, assignEvents(pass, n)...)
			// Continue into the RHS for call events; LHS idents are writes,
			// not uses, and are excluded below by position.
			for _, e := range n.Rhs {
				events = append(events, exprEvents(pass, e)...)
			}
			return false
		case *ast.CallExpr:
			if ev, ok := callEvent(pass, n); ok {
				events = append(events, ev)
			}
			return true
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				events = append(events, event{kind: "use", order: n.Pos(), pos: n, obj: obj})
			}
		}
		return true
	})
	return events
}

// exprEvents collects call and use events from an expression subtree.
func exprEvents(pass *analysis.Pass, e ast.Expr) []event {
	var events []event
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if ev, ok := callEvent(pass, n); ok {
				events = append(events, ev)
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				events = append(events, event{kind: "use", order: n.Pos(), pos: n, obj: obj})
			}
		}
		return true
	})
	return events
}

// assignEvents classifies an assignment: a Safe() acquisition, or a
// reassignment of some variable (which stops stale tracking for it).
func assignEvents(pass *analysis.Pass, as *ast.AssignStmt) []event {
	var events []event
	fromSafe := false
	var safeRecv string
	if len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			if recv, name, ok := gmacMethod(pass, call); ok && name == "Safe" {
				fromSafe = true
				safeRecv = recv
			}
		}
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if fromSafe && i == 0 {
			events = append(events, event{kind: "safe", order: as.End(), pos: id, recv: safeRecv, obj: obj})
		} else {
			events = append(events, event{kind: "assign", order: as.End(), pos: id, obj: obj})
		}
	}
	return events
}

// callEvent classifies one call expression as a coherence-relevant event.
// Removed wrappers are reported directly here (they need no ordering
// context) and also returned as "removed" events so they invalidate
// Safe pointers like any other kernel launch.
func callEvent(pass *analysis.Pass, call *ast.CallExpr) (event, bool) {
	recv, name, ok := gmacMethod(pass, call)
	if !ok {
		return event{}, false
	}
	if hint, ok := removed[name]; ok {
		pass.Reportf(call.Pos(), "%s was removed: use %s", name, hint)
		if name == "CallSync" || name == "CallAnnotated" {
			return event{kind: "removed", order: call.Rparen, pos: call, recv: recv, name: name}, true
		}
		return event{}, false
	}
	switch name {
	case "Call":
		ev := event{kind: "call", order: call.Rparen, pos: call, recv: recv, name: name}
		for _, arg := range call.Args {
			opt, ok := arg.(*ast.CallExpr)
			if !ok {
				continue
			}
			switch optName := gmacFunc(pass, opt); optName {
			case "Async":
				ev.kind = "async"
			case "Writes":
				ev.write = append(ev.write, identObjs(pass, opt.Args)...)
			}
		}
		return ev, true
	case "Sync":
		return event{kind: "sync", order: call.Rparen, pos: call, recv: recv, name: name}, true
	default:
		if hostReads[name] {
			return event{
				kind: "read", order: call.Rparen, pos: call, recv: recv, name: name,
				args: identObjs(pass, call.Args),
			}, true
		}
	}
	return event{}, false
}

// gmacMethod matches recv.Name(...) where Name is a method declared in a
// package named "gmac", returning the receiver rendered as source text.
func gmacMethod(pass *analysis.Pass, call *ast.CallExpr) (recv, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "gmac" {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// gmacFunc returns the name of a package-level gmac function being called
// ("" otherwise) — used to recognize the Async()/Writes() options.
func gmacFunc(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "gmac" {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return ""
	}
	return fn.Name()
}

// identObjs resolves the identifier arguments to their objects.
func identObjs(pass *analysis.Pass, args []ast.Expr) []types.Object {
	var objs []types.Object
	for _, a := range args {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

func intersects(a, b []types.Object) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
