package coherence_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/coherence"
)

func TestBasic(t *testing.T) {
	analysistest.Run(t, coherence.Analyzer, "coherence/basic")
}
