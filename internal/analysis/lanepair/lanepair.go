// Package lanepair checks that every sim.Clock.EnterLane has a dominated
// ExitLane.
//
// Per-goroutine time lanes (PR 2) model concurrent host threads against
// the single virtual clock: EnterLane forks the goroutine's view of time,
// ExitLane merges it back by max-folding into the shared clock. A lane
// left open silently freezes that goroutine's contribution to simulated
// time — a bug that only shows up as subtly wrong figures, never as a
// test failure. This analyzer requires, for each EnterLane/EnterLaneAt
// statement, either
//
//   - a `defer ...ExitLane()` later in the same block (covering every
//     return path), or
//   - a statement containing an ExitLane call later in the same block,
//     with no `return` statement in between (which would leak the lane).
//
// A bare ExitLane with no preceding EnterLane is legal (documented as a
// no-op) and is not flagged.
package lanepair

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lanepair analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lanepair",
	Doc:  "require every sim.Clock.EnterLane to be matched by a dominated ExitLane",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc verifies lane pairing within one function body. Nested
// function literals are separate functions (a lane entered in a closure
// must exit in that closure) and are handled by their own Inspect visit.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	paired := map[*ast.CallExpr]bool{}
	forEachBlock(body, func(list []ast.Stmt) {
		checkBlock(pass, list, paired)
	})
	// Any EnterLane call not proven paired by block scanning — e.g. in an
	// if-condition or argument position — is reported.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if ok && isLaneCall(pass, call, "EnterLane", "EnterLaneAt") && !paired[call] {
			pass.Reportf(call.Pos(), "EnterLane is not followed by a dominated ExitLane (use `defer ...ExitLane()` or call ExitLane on every path before returning)")
		}
		return true
	})
}

// forEachBlock invokes f on every statement list in the function body,
// without descending into nested function literals.
func forEachBlock(body *ast.BlockStmt, f func([]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			f(n.List)
		case *ast.CaseClause:
			f(n.Body)
		case *ast.CommClause:
			f(n.Body)
		}
		return true
	})
}

// checkBlock pairs EnterLane statements with following ExitLane/defer
// statements in one statement list.
func checkBlock(pass *analysis.Pass, list []ast.Stmt, paired map[*ast.CallExpr]bool) {
	for i, stmt := range list {
		enter := enterCall(pass, stmt)
		if enter == nil {
			continue
		}
		for _, later := range list[i+1:] {
			if d, ok := later.(*ast.DeferStmt); ok && isLaneCall(pass, d.Call, "ExitLane") {
				paired[enter] = true
				break
			}
			if containsExit(pass, later) {
				paired[enter] = true
				break
			}
			if containsReturn(later) {
				break // a return path escapes before ExitLane
			}
		}
	}
}

// enterCall returns the EnterLane/EnterLaneAt call when stmt is exactly
// such a call statement (the supported pairing shape).
func enterCall(pass *analysis.Pass, stmt ast.Stmt) *ast.CallExpr {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || !isLaneCall(pass, call, "EnterLane", "EnterLaneAt") {
		return nil
	}
	return call
}

// containsExit reports whether the statement contains an ExitLane call
// outside nested function literals.
func containsExit(pass *analysis.Pass, stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isLaneCall(pass, call, "ExitLane") {
			found = true
		}
		return !found
	})
	return found
}

// containsReturn reports whether the statement contains a return outside
// nested function literals.
func containsReturn(stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if _, ok := n.(*ast.ReturnStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// isLaneCall reports whether call invokes a *method* with one of the given
// names (EnterLane and friends are methods of sim.Clock; requiring a
// method receiver avoids matching unrelated local functions).
func isLaneCall(pass *analysis.Pass, call *ast.CallExpr, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	matched := false
	for _, name := range names {
		if sel.Sel.Name == name {
			matched = true
			break
		}
	}
	if !matched {
		return false
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}
