// Package lanepair checks that every sim.Clock.EnterLane has a dominated
// ExitLane — including EnterLane calls hidden inside helper wrappers.
//
// Per-goroutine time lanes (PR 2) model concurrent host threads against
// the single virtual clock: EnterLane forks the goroutine's view of time,
// ExitLane merges it back by max-folding into the shared clock. A lane
// left open silently freezes that goroutine's contribution to simulated
// time — a bug that only shows up as subtly wrong figures, never as a
// test failure. This analyzer requires, for each lane-entering statement,
// either
//
//   - a `defer ...ExitLane()` (or a deferred call to a lane-exiting
//     helper) later in the same block, covering every return path, or
//   - a statement containing a lane-exiting call later in the same block,
//     with no `return` statement in between (which would leak the lane).
//
// Lane entry and exit are resolved through the callgraph engine's
// summaries, so a helper that calls EnterLane without exiting counts as
// entering a lane at its call sites (and its callers must pair it), and
// a helper that only calls ExitLane counts as an exit. A function that
// deliberately leaves a lane open for its caller — the wrapper pattern —
// must be annotated //adsm:lanewrapper: the annotation suppresses the
// diagnostic inside the wrapper while making every call site subject to
// pairing, and the diagnostic at an unpaired wrapper call carries the
// chain down to the underlying EnterLane.
//
// A bare ExitLane with no preceding EnterLane is legal (documented as a
// no-op) and is not flagged.
package lanepair

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the lanepair analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lanepair",
	Doc:  "require every sim.Clock.EnterLane (or lane-entering helper call) to be matched by a dominated ExitLane",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info, err := callgraph.Of(pass)
	if err != nil {
		return err
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if _, wrapper := analysis.FuncDirective(pass.Fset, file, fn, "lanewrapper"); !wrapper && fn.Body != nil {
					checkFunc(pass, info, fn.Body)
				}
				// //adsm:lanewrapper leaves its lane open by design; its
				// call sites are checked instead. Function literals inside
				// any declaration are still separate functions.
			}
			checkLits(pass, info, decl)
		}
	}
	return nil
}

// checkLits checks every function literal nested under a declaration (a
// lane entered in a closure must exit in that closure).
func checkLits(pass *analysis.Pass, info *callgraph.Info, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkFunc(pass, info, lit.Body)
		}
		return true
	})
}

// checkFunc reports every unpaired lane-entering event in one function
// body. Nested function literals are excluded by the engine's walk and
// handled by their own checkLits visit.
func checkFunc(pass *analysis.Pass, info *callgraph.Info, body *ast.BlockStmt) {
	for _, le := range info.UnpairedLaneEnters(body) {
		if le.Callee == nil {
			pass.Reportf(le.Pos, "EnterLane is not followed by a dominated ExitLane (use `defer ...ExitLane()` or call ExitLane on every path before returning)")
			continue
		}
		pass.ReportChainf(le.Pos,
			callgraph.ChainStrings(le.Chain, "EnterLane", le.EnterPos),
			"call to %s enters a lane (EnterLane at %s%s) and is not followed by a dominated ExitLane (defer an exit, exit on every path, or annotate this caller //adsm:lanewrapper)",
			callgraph.Display(le.Callee), le.EnterPos, callgraph.ViaSuffix(le.Chain))
	}
}
