package lanepair_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lanepair"
)

func TestBasic(t *testing.T) {
	analysistest.Run(t, lanepair.Analyzer, "lanepair/basic")
}

func TestWrapper(t *testing.T) {
	analysistest.Run(t, lanepair.Analyzer, "lanepair/wrapper")
}
