// Package modecheck enforces the PR 7 access-mode contracts at vet time.
//
// An allocation's AccessMode is a promise about host behaviour for the
// object's whole lifetime: ReadOnly objects are sealed at their first
// kernel release (a later host write fails with ErrModeViolation),
// WriteOnly objects elide every device-to-host fetch (a host read of
// device-written data fails the same way). The runtime enforces both —
// but at run time, on the inputs that happen to execute. This analyzer
// moves the common shapes of those failures to `make vet`:
//
//   - a host write (HostWrite, Memset, MemcpyToShared, MemcpyShared dst,
//     or a kernel Call annotated Writes) reaching a pointer allocated
//     with gmac.Mode(gmac.ReadOnly);
//   - a host read (HostRead, MemcpyFromShared, MemcpyShared src) of a
//     pointer allocated gmac.Mode(gmac.WriteOnly) before any write has
//     populated it;
//   - a host read, through a helper, of a pointer an async kernel
//     (Call with Writes and Async) may still be writing, before a Sync.
//     Direct reads of async results are the coherence analyzer's
//     diagnostic; modecheck adds the interprocedural case it cannot see.
//
// Host accesses are resolved through the callgraph engine's summaries, so
// a write buried two helpers deep is flagged at the outer call with the
// chain down to the access. The tracking itself is deliberately local and
// linear: a pointer is followed from its `p, err := s.Alloc(...)` site
// through the statements of that function in source order, and tracking
// stops — silently, never reporting — as soon as the pointer is
// reassigned, aliased, taken by address, returned, or passed to a
// function the engine has no summary for. Within those bounds every
// diagnostic corresponds to a run-time ErrModeViolation (or a stale
// read) on the path that executes the flagged statements in order.
package modecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the modecheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "modecheck",
	Doc:  "flag host accesses that violate gmac access-mode contracts (ReadOnly/WriteOnly/Async), through helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info, err := callgraph.Of(pass)
	if err != nil {
		return err
	}
	for _, n := range info.Nodes {
		if n.Decl.Body == nil {
			continue
		}
		c := &collector{pass: pass, info: info}
		c.visit(n.Decl.Body, false)
		process(pass, c.events)
	}
	return nil
}

type evKind int

const (
	evDefine      evKind = iota // p, err := s.Alloc(..., gmac.Mode(...))
	evAccess                    // host write/read of a tracked pointer
	evKernelWrite               // Call(..., gmac.Writes(p), [gmac.Async()])
	evSync                      // s.Sync(): every pending async write lands
	evKill                      // tracking ends: reassigned, aliased, escaped
)

// event is one mode-relevant occurrence in source order.
type event struct {
	pos       token.Pos
	kind      evKind
	obj       types.Object
	mode      string // evDefine: "ReadOnly", "WriteOnly", or ""
	write     bool   // evAccess
	what      string // evAccess: underlying method name
	accessPos string // evAccess: where the underlying access sits
	chain     []callgraph.SummaryFrame
	async     bool // evKernelWrite
}

// collector walks one function body emitting events. The walk mirrors
// callgraph.InspectInline's literal policy: nested function literals run
// on their own schedule and are not part of this function's event order.
type collector struct {
	pass   *analysis.Pass
	info   *callgraph.Info
	events []event
}

func (c *collector) add(e event) {
	c.events = append(c.events, e)
}

// visit walks n. inCall marks positions inside call arguments, where bare
// pointer identifiers are accounted for by call classification instead of
// the conservative alias kill.
func (c *collector) visit(n ast.Node, inCall bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		return
	case *ast.GoStmt:
		// The goroutine's accesses are unordered against ours: stop
		// tracking any pointer it captures.
		c.killAllUnder(n)
		return
	case *ast.DeferStmt:
		// Deferred work runs at returns, out of line with this walk; a
		// deferred Sync in particular does NOT order before earlier
		// statements. Stop tracking pointers it touches.
		c.killAllUnder(n)
		return
	case *ast.AssignStmt:
		c.assign(n)
		return
	case *ast.CallExpr:
		c.call(n)
		return
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && c.isPtrIdent(id) {
				c.add(event{pos: n.Pos(), kind: evKill, obj: c.pass.TypesInfo.Uses[id]})
				return
			}
		}
	case *ast.Ident:
		if !inCall && c.isPtrIdent(n) {
			// Bare use outside a call: alias, comparison, return value.
			c.add(event{pos: n.Pos(), kind: evKill, obj: c.pass.TypesInfo.Uses[n]})
		}
		return
	}
	c.children(n, inCall)
}

// children visits n's direct children with the same context.
func (c *collector) children(n ast.Node, inCall bool) {
	ast.Inspect(n, func(ch ast.Node) bool {
		if ch == n {
			return true
		}
		c.visit(ch, inCall)
		return false
	})
}

// killAllUnder emits a kill for every tracked-pointer identifier in the
// subtree (conservative escape).
func (c *collector) killAllUnder(n ast.Node) {
	ast.Inspect(n, func(ch ast.Node) bool {
		if id, ok := ch.(*ast.Ident); ok && c.isPtrIdent(id) {
			c.add(event{pos: id.Pos(), kind: evKill, obj: c.pass.TypesInfo.Uses[id]})
		}
		return true
	})
}

// assign handles p, err := s.Alloc(...) defines, and kills tracking on any
// other assignment touching a pointer.
func (c *collector) assign(n *ast.AssignStmt) {
	if obj, mode, ok := c.allocDefine(n); ok {
		c.add(event{pos: n.Pos(), kind: evDefine, obj: obj, mode: mode})
		return
	}
	for _, rhs := range n.Rhs {
		c.visit(rhs, false)
	}
	for _, lhs := range n.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if c.isPtrIdent(id) && n.Tok == token.ASSIGN {
				c.add(event{pos: id.Pos(), kind: evKill, obj: c.pass.TypesInfo.Uses[id]})
			}
			continue
		}
		c.visit(lhs, false)
	}
}

// allocDefine recognizes `p, err := sess.Alloc(size, opts...)` with p
// gmac.Ptr-typed, returning p's object and the declared mode ("" when no
// gmac.Mode option is present — the pointer is still tracked for async
// bookkeeping).
func (c *collector) allocDefine(n *ast.AssignStmt) (types.Object, string, bool) {
	if len(n.Rhs) != 1 || len(n.Lhs) == 0 {
		return nil, "", false
	}
	call, ok := n.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Alloc" {
		return nil, "", false
	}
	id, ok := n.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, "", false
	}
	var obj types.Object
	if n.Tok == token.DEFINE {
		obj = c.pass.TypesInfo.Defs[id]
	} else {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil || !callgraph.IsGmacPtr(obj.Type()) {
		return nil, "", false
	}
	return obj, c.allocModeOf(call), true
}

// allocModeOf extracts the gmac.Mode(...) option's constant, if any.
func (c *collector) allocModeOf(call *ast.CallExpr) string {
	for _, arg := range call.Args {
		oc, ok := arg.(*ast.CallExpr)
		if !ok {
			continue
		}
		ofn := analysis.CalleeFunc(c.pass.TypesInfo, oc)
		if ofn == nil || ofn.Name() != "Mode" || ofn.Pkg() == nil || ofn.Pkg().Name() != "gmac" || len(oc.Args) != 1 {
			continue
		}
		var sel *ast.Ident
		switch a := ast.Unparen(oc.Args[0]).(type) {
		case *ast.SelectorExpr:
			sel = a.Sel
		case *ast.Ident:
			sel = a
		}
		if sel == nil {
			continue
		}
		switch name := sel.Name; name {
		case "ReadOnly", "ModeReadOnly":
			return "ReadOnly"
		case "WriteOnly", "ModeWriteOnly":
			return "WriteOnly"
		}
	}
	return ""
}

// call classifies one call: host-access effects (direct methods or helper
// summaries), kernel launches with Writes annotations, Sync barriers, and
// pointer escapes into unsummarized callees.
func (c *collector) call(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	consumed := map[ast.Expr]bool{}

	for _, eff := range c.info.PtrEffects(call) {
		id, ok := ast.Unparen(eff.Arg).(*ast.Ident)
		if !ok {
			continue
		}
		c.add(event{pos: call.Pos(), kind: evAccess, obj: info.Uses[id],
			write: eff.Write, what: eff.What, accessPos: eff.Pos, chain: eff.Chain})
		consumed[eff.Arg] = true
	}

	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Sync":
			if len(call.Args) == 0 {
				c.add(event{pos: call.Pos(), kind: evSync})
			}
		case "Call", "CallSync":
			c.kernelCall(call, sel.Sel.Name == "CallSync", consumed)
		}
	}

	// Any pointer passed to a callee without a summary may be written,
	// read, or retained there: stop tracking it. Callees the engine does
	// know (module-local helpers, the gmac session API itself) already
	// had their effects applied above.
	neutral := false
	if fn := analysis.CalleeFunc(info, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Name() == "gmac" {
			neutral = true
		} else if c.info.Summary(fn) != nil {
			neutral = true
		}
	}
	for _, arg := range call.Args {
		if consumed[arg] {
			continue
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if c.isPtrIdent(id) && !neutral {
				c.add(event{pos: arg.Pos(), kind: evKill, obj: info.Uses[id]})
			}
			continue
		}
		c.visit(arg, true)
	}
}

// kernelCall handles sess.Call(kernel, args, opts...): a Writes(p) option
// is a kernel write of p — immediate for synchronous calls, pending until
// Sync when Async() is present.
func (c *collector) kernelCall(call *ast.CallExpr, syncing bool, consumed map[ast.Expr]bool) {
	info := c.pass.TypesInfo
	async := false
	var written []*ast.Ident
	for _, arg := range call.Args {
		oc, ok := arg.(*ast.CallExpr)
		if !ok {
			continue
		}
		ofn := analysis.CalleeFunc(info, oc)
		if ofn == nil || ofn.Pkg() == nil || ofn.Pkg().Name() != "gmac" {
			continue
		}
		switch ofn.Name() {
		case "Async":
			async = true
			consumed[arg] = true
		case "Writes", "WriteOnlyHint":
			for _, wa := range oc.Args {
				if id, ok := ast.Unparen(wa).(*ast.Ident); ok && c.isPtrIdent(id) {
					written = append(written, id)
				}
			}
			consumed[arg] = true
		case "ReadOnlyHint":
			consumed[arg] = true // kernel-side read: no host access
		}
	}
	if syncing {
		async = false
	}
	for _, id := range written {
		c.add(event{pos: call.Pos(), kind: evKernelWrite, obj: info.Uses[id], async: async})
	}
	if syncing {
		c.add(event{pos: call.End(), kind: evSync})
	}
}

// isPtrIdent reports whether id names a gmac.Ptr-typed object.
func (c *collector) isPtrIdent(id *ast.Ident) bool {
	obj := c.pass.TypesInfo.Uses[id]
	return obj != nil && callgraph.IsGmacPtr(obj.Type())
}

// state is the per-pointer tracking record.
type state struct {
	name     string
	mode     string
	allocPos string
	wrote    bool   // some write (host or kernel) has reached it
	asyncAt  string // pending async kernel write's launch position
}

// process replays the events in source order, reporting contract
// violations.
func process(pass *analysis.Pass, events []event) {
	vars := map[types.Object]*state{}
	shortPos := func(p token.Pos) string {
		pos := pass.Fset.Position(p)
		return filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line)
	}
	for _, e := range events {
		switch e.kind {
		case evDefine:
			vars[e.obj] = &state{name: e.obj.Name(), mode: e.mode, allocPos: shortPos(e.pos)}
		case evKill:
			delete(vars, e.obj)
		case evSync:
			for _, st := range vars {
				st.asyncAt = ""
			}
		case evKernelWrite:
			st := vars[e.obj]
			if st == nil {
				break
			}
			if st.mode == "ReadOnly" {
				pass.Reportf(e.pos,
					"kernel declares Writes(%s), but %s is allocated gmac.ReadOnly at %s; ReadOnly objects are sealed after their first release (ErrModeViolation at run time)",
					st.name, st.name, st.allocPos)
			}
			st.wrote = true
			if e.async {
				st.asyncAt = shortPos(e.pos)
			}
		case evAccess:
			st := vars[e.obj]
			if st == nil {
				break
			}
			if e.write {
				if st.mode == "ReadOnly" {
					pass.ReportChainf(e.pos,
						callgraph.ChainStrings(e.chain, e.what+" "+st.name, e.accessPos),
						"%s writes %s, which is allocated gmac.ReadOnly at %s; writes to ReadOnly objects fail with ErrModeViolation%s",
						e.what, st.name, st.allocPos, callgraph.ViaSuffix(e.chain))
				}
				st.wrote = true
				break
			}
			if st.mode == "WriteOnly" && !st.wrote {
				pass.ReportChainf(e.pos,
					callgraph.ChainStrings(e.chain, e.what+" "+st.name, e.accessPos),
					"%s reads %s, which is allocated gmac.WriteOnly at %s and not yet written; reads of WriteOnly objects fail with ErrModeViolation%s",
					e.what, st.name, st.allocPos, callgraph.ViaSuffix(e.chain))
			}
			if st.asyncAt != "" && len(e.chain) > 0 {
				// Direct async reads are the coherence analyzer's
				// diagnostic; only the helper-mediated read is new here.
				pass.ReportChainf(e.pos,
					callgraph.ChainStrings(e.chain, e.what+" "+st.name, e.accessPos),
					"%s reads %s while the async kernel launched at %s may still be writing it; Sync first%s",
					e.what, st.name, st.asyncAt, callgraph.ViaSuffix(e.chain))
			}
		}
	}
}
