package modecheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/modecheck"
)

func TestBasic(t *testing.T) {
	analysistest.Run(t, modecheck.Analyzer, "modecheck/basic")
}
