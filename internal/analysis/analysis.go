// Package analysis is a dependency-free re-creation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's needs.
//
// The ADSM runtime's correctness rests on conventions the Go compiler
// cannot check: coherence actions only at call/return boundaries (Gelado
// et al., ASPLOS 2010, §3), a strict lock order in internal/core, an
// allocation-free fault hot path, and EnterLane/ExitLane pairing. The
// analyzers under internal/analysis/... turn those conventions into
// mechanical checks, in the spirit of Shasta's compiler-inserted access
// checks: tooling, not discipline.
//
// The x/tools analysis framework is the natural substrate, but this module
// is intentionally dependency-free (and is built in offline environments),
// so this package defines the same minimal vocabulary — Analyzer, Pass,
// Diagnostic — on top of go/ast and go/types alone. cmd/adsmvet drives the
// analyzers either standalone or as a `go vet -vettool` backend.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //adsm:allow
	// suppressions. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description printed by `adsmvet -help`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Unit is one loaded, type-checked package ready for analysis.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Run applies every analyzer to the unit and returns the surviving
// diagnostics: findings on lines carrying an //adsm:allow suppression are
// dropped, and the rest are sorted by position.
func Run(unit *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      unit.Fset,
			Files:     unit.Files,
			Pkg:       unit.Pkg,
			TypesInfo: unit.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	diags = filterAllowed(unit, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// filterAllowed drops diagnostics suppressed by an //adsm:allow directive
// on the same line or the line immediately above.
func filterAllowed(unit *Unit, diags []Diagnostic) []Diagnostic {
	// allow maps file -> line -> allowed analyzer names ("" = all).
	allow := map[string]map[int][]string{}
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := directive(c.Text, "allow")
				if !ok {
					continue
				}
				pos := unit.Fset.Position(c.Pos())
				m := allow[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					allow[pos.Filename] = m
				}
				names := strings.Fields(rest)
				if len(names) == 0 {
					names = []string{""}
				}
				m[pos.Line] = append(m[pos.Line], names...)
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !allowed(allow, d) {
			kept = append(kept, d)
		}
	}
	return kept
}

func allowed(allow map[string]map[int][]string, d Diagnostic) bool {
	m := allow[d.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range m[line] {
			if name == "" || name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// directive reports whether the comment text is the //adsm:<name> directive
// (optionally followed by arguments), returning the argument remainder.
// Directives use the standard Go tool-directive shape: no space after //.
func directive(text, name string) (rest string, ok bool) {
	prefix := "//adsm:" + name
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest = text[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //adsm:noallocator
	}
	return strings.TrimSpace(rest), true
}

// Directive scans a comment group for the //adsm:<name> directive.
func Directive(cg *ast.CommentGroup, name string) (rest string, ok bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		if rest, ok := directive(c.Text, name); ok {
			return rest, ok
		}
	}
	return "", false
}

// FuncDirective reports whether fn carries the //adsm:<name> directive,
// either in its doc comment or in a free-standing comment group that ends
// on the line immediately above the declaration.
func FuncDirective(fset *token.FileSet, file *ast.File, fn *ast.FuncDecl, name string) (string, bool) {
	if rest, ok := Directive(fn.Doc, name); ok {
		return rest, ok
	}
	funcLine := fset.Position(fn.Pos()).Line
	for _, cg := range file.Comments {
		if fset.Position(cg.End()).Line == funcLine-1 {
			if rest, ok := Directive(cg, name); ok {
				return rest, ok
			}
		}
	}
	return "", false
}

// ReceiverTypeName returns the name of fn's receiver base type ("" for
// plain functions), ignoring any pointer indirection.
func ReceiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// FuncKey renders a FuncDecl as "Name" or "(*Recv).Name", the notation used
// by the noalloc required-annotation table.
func FuncKey(fn *ast.FuncDecl) string {
	if recv := ReceiverTypeName(fn); recv != "" {
		return "(*" + recv + ")." + fn.Name.Name
	}
	return fn.Name.Name
}

// CalleeFunc resolves the called function or method of a call expression,
// or nil (builtins, function-typed variables, type conversions).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// CalleePkgName returns the package name declaring the called function
// ("" when unresolved or a builtin).
func CalleePkgName(info *types.Info, call *ast.CallExpr) string {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name()
}

// IsBuiltinCall reports whether the call invokes the named builtin.
func IsBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
