// Package analysis is a dependency-free re-creation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's needs.
//
// The ADSM runtime's correctness rests on conventions the Go compiler
// cannot check: coherence actions only at call/return boundaries (Gelado
// et al., ASPLOS 2010, §3), a strict lock order in internal/core, an
// allocation-free fault hot path, and EnterLane/ExitLane pairing. The
// analyzers under internal/analysis/... turn those conventions into
// mechanical checks, in the spirit of Shasta's compiler-inserted access
// checks: tooling, not discipline.
//
// The x/tools analysis framework is the natural substrate, but this module
// is intentionally dependency-free (and is built in offline environments),
// so this package defines the same minimal vocabulary — Analyzer, Pass,
// Diagnostic — on top of go/ast and go/types alone. cmd/adsmvet drives the
// analyzers either standalone or as a `go vet -vettool` backend.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //adsm:allow
	// suppressions. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description printed by `adsmvet -help`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Unit is the loaded package under analysis; interprocedural analyzers
	// reach the callgraph summary engine through it (callgraph.Of caches
	// the per-package graph and summaries here so the four consumers share
	// one computation).
	Unit *Unit

	diags *[]Diagnostic
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Chain is the interprocedural call chain leading to the violation,
	// outermost call first, rendered one frame per entry ("core.helper at
	// manager.go:120"). Empty for intra-procedural findings.
	Chain []string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportChainf records a diagnostic at pos carrying an interprocedural
// call chain (outermost frame first).
func (p *Pass) ReportChainf(pos token.Pos, chain []string, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// Unit is one loaded, type-checked package ready for analysis.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// DepUnits maps import paths of module-local (or testdata-sibling)
	// dependencies to their loaded units, so the summary engine can
	// compute dependency summaries from source. The map is shared between
	// all units of one load and may include this unit itself.
	DepUnits map[string]*Unit

	// DepBlob returns the serialized callgraph summary blob for a
	// dependency package (nil when unknown). Set in unitchecker mode,
	// where dependency summaries arrive as vetx facts files instead of
	// loaded source.
	DepBlob func(pkgPath string) []byte

	cacheMu sync.Mutex
	cache   map[string]any
}

// Cache memoizes a per-unit computation under key, so independent
// analyzers share one callgraph/summary build per package.
func (u *Unit) Cache(key string, build func() (any, error)) (any, error) {
	u.cacheMu.Lock()
	defer u.cacheMu.Unlock()
	if v, ok := u.cache[key]; ok {
		if err, isErr := v.(error); isErr {
			return nil, err
		}
		return v, nil
	}
	v, err := build()
	if u.cache == nil {
		u.cache = map[string]any{}
	}
	if err != nil {
		u.cache[key] = err
		return nil, err
	}
	u.cache[key] = v
	return v, nil
}

// AllowCheck is the suppression auditor: it validates //adsm:allow
// directives rather than source code. Each directive must carry a reason
// (`//adsm:allow noalloc: cold error path`), and a directive that no
// longer suppresses any diagnostic of the analyzers that ran is reported
// as stale. It is meaningful when run alongside the full suite (the
// default); a directive naming an analyzer that did not run is never
// reported stale.
var AllowCheck = &Analyzer{
	Name: "allowcheck",
	Doc:  "require a reason on every //adsm:allow suppression and flag stale suppressions",
	Run:  func(*Pass) error { return nil }, // handled by the framework after filtering
}

// Run applies every analyzer to the unit and returns the surviving
// diagnostics: findings on lines carrying an //adsm:allow suppression are
// dropped, and the rest are sorted by position. When the suite includes
// AllowCheck, the suppression directives themselves are audited after
// filtering.
func Run(unit *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	auditAllows := false
	ran := map[string]bool{}
	for _, a := range analyzers {
		if a == AllowCheck || a.Name == AllowCheck.Name {
			auditAllows = true
			continue
		}
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      unit.Fset,
			Files:     unit.Files,
			Pkg:       unit.Pkg,
			TypesInfo: unit.TypesInfo,
			Unit:      unit,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	directives := allowDirectives(unit)
	diags = filterAllowed(directives, diags)
	if auditAllows {
		diags = append(diags, auditDirectives(directives, ran)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// allowDirective is one parsed //adsm:allow comment. The canonical shape
// is `//adsm:allow <analyzer...>: <reason>`; no analyzer names means every
// analyzer is suppressed on that line.
type allowDirective struct {
	pos       token.Position
	names     []string // empty = all analyzers
	hasReason bool
	used      int // diagnostics this directive suppressed in this run
}

// allowDirectives parses every //adsm:allow comment in the unit.
func allowDirectives(unit *Unit) []*allowDirective {
	var dirs []*allowDirective
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := directive(c.Text, "allow")
				if !ok {
					continue
				}
				d := &allowDirective{pos: unit.Fset.Position(c.Pos())}
				names := rest
				if i := strings.IndexByte(rest, ':'); i >= 0 {
					names = rest[:i]
					d.hasReason = strings.TrimSpace(rest[i+1:]) != ""
				}
				d.names = strings.Fields(names)
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// filterAllowed drops diagnostics suppressed by an //adsm:allow directive
// on the same line or the line immediately above, crediting the directive
// that granted each suppression.
func filterAllowed(dirs []*allowDirective, diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if !allowed(dirs, d) {
			kept = append(kept, d)
		}
	}
	return kept
}

func allowed(dirs []*allowDirective, d Diagnostic) bool {
	for _, dir := range dirs {
		if dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if dir.pos.Line != d.Pos.Line && dir.pos.Line != d.Pos.Line-1 {
			continue
		}
		if dir.matches(d.Analyzer) {
			dir.used++
			return true
		}
	}
	return false
}

func (dir *allowDirective) matches(analyzer string) bool {
	if len(dir.names) == 0 {
		return true
	}
	for _, n := range dir.names {
		if n == analyzer {
			return true
		}
	}
	return false
}

// auditDirectives produces the AllowCheck diagnostics: directives missing
// a reason, and directives that suppressed nothing even though every
// analyzer they name ran (stale suppressions left behind after the code
// they excused was fixed or deleted).
func auditDirectives(dirs []*allowDirective, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range dirs {
		if !dir.hasReason {
			out = append(out, Diagnostic{
				Analyzer: AllowCheck.Name,
				Pos:      dir.pos,
				Message:  "//adsm:allow needs a reason: write `//adsm:allow <analyzer...>: <why this is safe>`",
			})
			continue
		}
		if dir.used > 0 {
			continue
		}
		stale := true
		for _, n := range dir.names {
			if !ran[n] {
				stale = false // that analyzer did not run; cannot judge
				break
			}
		}
		if stale {
			out = append(out, Diagnostic{
				Analyzer: AllowCheck.Name,
				Pos:      dir.pos,
				Message:  fmt.Sprintf("stale //adsm:allow: it suppresses no %s diagnostic any more; delete it", strings.Join(orAll(dir.names), "/")),
			})
		}
	}
	return out
}

func orAll(names []string) []string {
	if len(names) == 0 {
		return []string{"analyzer"}
	}
	return names
}

// directive reports whether the comment text is the //adsm:<name> directive
// (optionally followed by arguments), returning the argument remainder.
// Directives use the standard Go tool-directive shape: no space after //.
func directive(text, name string) (rest string, ok bool) {
	prefix := "//adsm:" + name
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest = text[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //adsm:noallocator
	}
	return strings.TrimSpace(rest), true
}

// Directive scans a comment group for the //adsm:<name> directive.
func Directive(cg *ast.CommentGroup, name string) (rest string, ok bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		if rest, ok := directive(c.Text, name); ok {
			return rest, ok
		}
	}
	return "", false
}

// FuncDirective reports whether fn carries the //adsm:<name> directive,
// either in its doc comment or in a free-standing comment group that ends
// on the line immediately above the declaration.
func FuncDirective(fset *token.FileSet, file *ast.File, fn *ast.FuncDecl, name string) (string, bool) {
	if rest, ok := Directive(fn.Doc, name); ok {
		return rest, ok
	}
	funcLine := fset.Position(fn.Pos()).Line
	for _, cg := range file.Comments {
		if fset.Position(cg.End()).Line == funcLine-1 {
			if rest, ok := Directive(cg, name); ok {
				return rest, ok
			}
		}
	}
	return "", false
}

// ReceiverTypeName returns the name of fn's receiver base type ("" for
// plain functions), ignoring any pointer indirection.
func ReceiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// FuncKey renders a FuncDecl as "Name" or "(*Recv).Name", the notation used
// by the noalloc required-annotation table.
func FuncKey(fn *ast.FuncDecl) string {
	if recv := ReceiverTypeName(fn); recv != "" {
		return "(*" + recv + ")." + fn.Name.Name
	}
	return fn.Name.Name
}

// CalleeFunc resolves the called function or method of a call expression,
// or nil (builtins, function-typed variables, type conversions).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// CalleePkgName returns the package name declaring the called function
// ("" when unresolved or a builtin).
func CalleePkgName(info *types.Info, call *ast.CallExpr) string {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name()
}

// IsBuiltinCall reports whether the call invokes the named builtin.
func IsBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
