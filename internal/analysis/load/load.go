// Package load turns Go packages into type-checked analysis units without
// depending on golang.org/x/tools.
//
// Module packages are enumerated with `go list -e -export -deps -test
// -json`, which also produces gc export data for every dependency
// (standard library included), and are then parsed from source and
// type-checked against that export data via go/importer's lookup mode —
// the same import strategy `go vet` feeds its unitchecker backends.
// Testdata trees (the analyzers' golden tests) skip the go command
// entirely: their tiny dependency sets are resolved from sibling testdata
// directories and, for the standard library, the source importer.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Package is the subset of `go list -json` output the loader consumes.
type Package struct {
	Dir        string
	ImportPath string
	Name       string
	ForTest    string
	Export     string
	Module     *struct{ Path string }
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// GoList runs the go command in dir and decodes the JSON package stream.
func GoList(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(Package)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Units loads the packages matched by patterns (plus their internal-test
// variants and external test packages) as type-checked analysis units.
func Units(dir string, patterns ...string) ([]*analysis.Unit, error) {
	pkgs, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	// Export data for every dependency, keyed by import path as listed
	// (test variants keep their "pkg [root.test]" spelling).
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// Pick the units to analyze: module-local roots, preferring the
	// test-augmented variant of a package over the plain one so _test.go
	// files are analyzed too. Synthesized test mains are skipped.
	variant := map[string]bool{} // plain import paths shadowed by a test variant
	for _, p := range pkgs {
		if p.ForTest != "" && strings.HasPrefix(p.ImportPath, p.ForTest+" ") {
			variant[p.ForTest] = true
		}
	}
	fset := token.NewFileSet()

	// Source-load every module-local package in its PLAIN (non-test)
	// variant into a shared dependency map, so the callgraph engine can
	// summarize a root's module-local callees from source. Plain variants
	// only: the plain import graph is acyclic, while a test variant can
	// be imported by its own dependencies' test packages.
	depUnits := map[string]*analysis.Unit{}
	for _, p := range pkgs {
		if p.Standard || p.Module == nil || len(p.GoFiles) == 0 ||
			p.ForTest != "" || strings.ContainsRune(p.ImportPath, ' ') ||
			strings.HasSuffix(p.ImportPath, ".test") || p.Error != nil {
			continue
		}
		unit, err := checkUnit(fset, p, exports)
		if err != nil {
			return nil, err
		}
		unit.DepUnits = depUnits
		depUnits[p.ImportPath] = unit
	}

	var units []*analysis.Unit
	for _, p := range pkgs {
		switch {
		case p.DepOnly || p.Standard || len(p.GoFiles) == 0:
			continue
		case strings.HasSuffix(p.ImportPath, ".test"): // synthesized main
			continue
		case p.ForTest == "" && variant[p.ImportPath]:
			continue // analyzed via its test variant
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if unit := depUnits[p.ImportPath]; unit != nil {
			units = append(units, unit) // plain root: already loaded above
			continue
		}
		unit, err := checkUnit(fset, p, exports)
		if err != nil {
			return nil, err
		}
		unit.DepUnits = depUnits
		units = append(units, unit)
	}
	sort.Slice(units, func(i, j int) bool { return units[i].Pkg.Path() < units[j].Pkg.Path() })
	return units, nil
}

// checkUnit parses and type-checks one listed package against the export
// data of its dependencies.
func checkUnit(fset *token.FileSet, p *Package, exports map[string]string) (*analysis.Unit, error) {
	files, err := parseFiles(fset, p.Dir, p.GoFiles)
	if err != nil {
		return nil, err
	}
	// A test variant's imports resolve to the same variant of its
	// dependencies when one was built (export_test.go extensions).
	suffix := ""
	if i := strings.IndexByte(p.ImportPath, ' '); i >= 0 {
		suffix = p.ImportPath[i:]
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if suffix != "" {
			if f, ok := exports[path+suffix]; ok {
				return os.Open(f)
			}
		}
		if f, ok := exports[path]; ok {
			return os.Open(f)
		}
		return nil, fmt.Errorf("no export data for %q", path)
	}
	path := p.ImportPath
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	pkg, info, err := Check(fset, path, files, importer.ForCompiler(fset, "gc", lookup))
	if err != nil {
		return nil, fmt.Errorf("package %s: %v", p.ImportPath, err)
	}
	return &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// Check type-checks the parsed files as package path with full type
// information recorded.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Dir loads a single directory of Go source (no go command involved) as one
// analysis unit. Imports resolve first against siblings: roots lists
// directories whose subdirectories are importable by relative path (the
// analysistest layout testdata/src/<path>), then against the standard
// library via the source importer. Files named *_test.go are included.
func Dir(dir string, roots ...string) (*analysis.Unit, error) {
	fset := token.NewFileSet()
	imp := &dirImporter{
		fset:  fset,
		roots: roots,
		std:   importer.ForCompiler(fset, "source", nil),
		pkgs:  map[string]*types.Package{},
		units: map[string]*analysis.Unit{},
	}
	path := importPathOf(dir, roots)
	pkg, files, info, err := imp.load(dir, path)
	if err != nil {
		return nil, err
	}
	unit := imp.units[path]
	if unit == nil {
		unit = &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, DepUnits: imp.units}
	}
	return unit, nil
}

// importPathOf derives the import path a testdata directory is reachable
// under, relative to the first root containing it.
func importPathOf(dir string, roots []string) string {
	for _, root := range roots {
		if rel, err := filepath.Rel(root, dir); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.Base(dir)
}

// dirImporter resolves imports for Dir units: testdata siblings first,
// standard library second. Sibling packages loaded from source are also
// retained as analysis units (di.units), so the callgraph engine can
// summarize cross-package callees in golden tests.
type dirImporter struct {
	fset  *token.FileSet
	roots []string
	std   types.Importer
	pkgs  map[string]*types.Package
	units map[string]*analysis.Unit
}

func (di *dirImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := di.pkgs[path]; ok {
		return pkg, nil
	}
	for _, root := range di.roots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			pkg, _, _, err := di.load(dir, path)
			if err != nil {
				return nil, err
			}
			return pkg, nil
		}
	}
	pkg, err := di.std.Import(path)
	if err != nil {
		return nil, err
	}
	di.pkgs[path] = pkg
	return pkg, nil
}

func (di *dirImporter) load(dir, path string) (*types.Package, []*ast.File, *types.Info, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	sort.Strings(names)
	files, err := parseFiles(di.fset, dir, names)
	if err != nil {
		return nil, nil, nil, err
	}
	pkg, info, err := Check(di.fset, path, files, di)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("package %s: %v", path, err)
	}
	di.pkgs[path] = pkg
	di.units[path] = &analysis.Unit{
		Fset: di.fset, Files: files, Pkg: pkg, TypesInfo: info, DepUnits: di.units,
	}
	return pkg, files, info, nil
}
