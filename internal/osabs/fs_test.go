package osabs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/interconnect"
	"repro/internal/sim"
)

func freeFS() *FS { return NewFS(nil, nil, nil) }

func chargedFS() (*FS, *sim.Clock, *sim.Breakdown) {
	clock := sim.NewClock()
	bd := sim.NewBreakdown()
	disk := &interconnect.Link{Name: "disk", Latency: sim.Millisecond, PeakBps: 100e6}
	return NewFS(disk, clock, bd), clock, bd
}

func TestCreateWriteReadBack(t *testing.T) {
	fs := freeFS()
	f := fs.Create("input.dat")
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if n, err := f.Read(buf); n != 5 || err != nil {
		t.Fatalf("read %d %v", n, err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read back %q", buf)
	}
	// Continue from position.
	rest, _ := io.ReadAll(f)
	if string(rest) != " world" {
		t.Fatalf("rest = %q", rest)
	}
}

func TestOpenMissing(t *testing.T) {
	fs := freeFS()
	if _, err := fs.Open("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if _, err := fs.Size("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Size err = %v", err)
	}
	if err := fs.Remove("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Remove err = %v", err)
	}
}

func TestCreateWithAndContents(t *testing.T) {
	fs := freeFS()
	data := []byte{1, 2, 3, 4}
	fs.CreateWith("a", data)
	got, err := fs.Contents("a")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("contents %v %v", got, err)
	}
	// Contents is a copy.
	got[0] = 99
	again, _ := fs.Contents("a")
	if again[0] != 1 {
		t.Fatal("Contents returned a live slice")
	}
	if sz, _ := fs.Size("a"); sz != 4 {
		t.Fatalf("size %d", sz)
	}
}

func TestReadEOF(t *testing.T) {
	fs := freeFS()
	fs.CreateWith("a", []byte("xy"))
	f, _ := fs.Open("a")
	buf := make([]byte, 10)
	n, err := f.Read(buf)
	if n != 2 || err != nil {
		t.Fatalf("first read %d %v", n, err)
	}
	if _, err := f.Read(buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestWriteGrowsAndOverwrites(t *testing.T) {
	fs := freeFS()
	f := fs.Create("a")
	f.Write([]byte("aaaa"))
	f.Seek(2, io.SeekStart)
	f.Write([]byte("BBBB")) // overwrite 2, grow by 2
	got, _ := fs.Contents("a")
	if string(got) != "aaBBBB" {
		t.Fatalf("contents %q", got)
	}
}

func TestSeekWhence(t *testing.T) {
	fs := freeFS()
	fs.CreateWith("a", []byte("0123456789"))
	f, _ := fs.Open("a")
	if pos, _ := f.Seek(-3, io.SeekEnd); pos != 7 {
		t.Fatalf("SeekEnd pos %d", pos)
	}
	if pos, _ := f.Seek(1, io.SeekCurrent); pos != 8 {
		t.Fatalf("SeekCurrent pos %d", pos)
	}
	if _, err := f.Seek(-100, io.SeekStart); err == nil {
		t.Fatal("negative seek succeeded")
	}
	if _, err := f.Seek(0, 42); err == nil {
		t.Fatal("bad whence succeeded")
	}
}

func TestClosedHandle(t *testing.T) {
	fs := freeFS()
	f := fs.Create("a")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(nil); !errors.Is(err, ErrClosed) {
		t.Fatal("read on closed handle")
	}
	if _, err := f.Write(nil); !errors.Is(err, ErrClosed) {
		t.Fatal("write on closed handle")
	}
	if _, err := f.Seek(0, io.SeekStart); !errors.Is(err, ErrClosed) {
		t.Fatal("seek on closed handle")
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Fatal("double close")
	}
}

func TestList(t *testing.T) {
	fs := freeFS()
	fs.CreateWith("b", nil)
	fs.CreateWith("a", nil)
	got := fs.List()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("List = %v", got)
	}
	fs.Remove("a")
	if got := fs.List(); len(got) != 1 {
		t.Fatalf("List after remove = %v", got)
	}
}

func TestIOChargesTimeAndBreakdown(t *testing.T) {
	fs, clock, bd := chargedFS()
	fs.CreateWith("in", make([]byte, 100e6)) // 1 second at 100 MB/s
	f, _ := fs.Open("in")
	buf := make([]byte, 100e6)
	io.ReadFull(f, buf)
	if clock.Now() < sim.Second {
		t.Fatalf("100MB read charged only %v", clock.Now())
	}
	if bd.Get(sim.CatIORead) != clock.Now() {
		t.Fatalf("IORead bucket %v != clock %v", bd.Get(sim.CatIORead), clock.Now())
	}
	before := clock.Now()
	out := fs.Create("out")
	out.Write(make([]byte, 50e6))
	wrote := clock.Now() - before
	if wrote < 500*sim.Millisecond {
		t.Fatalf("50MB write charged only %v", wrote)
	}
	st := fs.Stats()
	if st.BytesRead != 100e6 || st.BytesWritten != 50e6 {
		t.Fatalf("stats %+v", st)
	}
	if st.ReadTime == 0 || st.WriteTime == 0 {
		t.Fatalf("io times not recorded: %+v", st)
	}
}

func TestTruncateOnCreate(t *testing.T) {
	fs := freeFS()
	fs.CreateWith("a", []byte("old"))
	fs.Create("a")
	if sz, _ := fs.Size("a"); sz != 0 {
		t.Fatalf("Create did not truncate: %d", sz)
	}
}
