// Package osabs is the OS abstraction layer of Figure 5: it gives the rest
// of the stack POSIX-shaped file I/O backed by an in-memory filesystem with
// a disk bandwidth/latency model, so the IORead/IOWrite slices of the
// paper's Figure 10 breakdown are reproduced. The GMAC library interposes
// on these calls (package gmac) to support I/O directly into shared
// objects, block by block, as described in Section 4.4.
package osabs

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/fault"
	"repro/internal/interconnect"
	"repro/internal/sim"
)

// ErrNotExist is returned when opening a file that was never created.
var ErrNotExist = errors.New("osabs: file does not exist")

// ErrClosed is returned when using a closed file handle.
var ErrClosed = errors.New("osabs: file handle is closed")

// FS is an in-memory filesystem whose operations cost virtual time
// according to a disk model.
type FS struct {
	files map[string]*inode
	disk  *interconnect.Link
	clock *sim.Clock
	bd    *sim.Breakdown
	stats IOStats
	// inj, when set, is consulted before every Read/Write (I/O fault
	// testing); a faulted operation touches no data.
	inj *fault.Injector
}

type inode struct {
	data []byte
}

// IOStats counts filesystem traffic.
type IOStats struct {
	BytesRead    int64
	BytesWritten int64
	Reads        int64
	Writes       int64
	ReadTime     sim.Time
	WriteTime    sim.Time
}

// NewFS returns an empty filesystem. disk may be nil for a free (zero-cost)
// filesystem, used by unit tests of other layers.
func NewFS(disk *interconnect.Link, clock *sim.Clock, bd *sim.Breakdown) *FS {
	return &FS{files: make(map[string]*inode), disk: disk, clock: clock, bd: bd}
}

// Stats returns a copy of the traffic counters.
func (fs *FS) Stats() IOStats { return fs.stats }

// SetFaultInjector arms the filesystem with a fault injector consulted by
// every Read and Write under fault.OpFileRead/OpFileWrite. Pass nil to
// disarm.
func (fs *FS) SetFaultInjector(in *fault.Injector) { fs.inj = in }

// injectIO consults the injector for one I/O operation; a timeout fault
// charges its delay to the clock before surfacing.
func (fs *FS) injectIO(op fault.Op) error {
	if fs.inj == nil {
		return nil
	}
	err := fs.inj.Decide(op)
	if err == nil {
		return nil
	}
	var fe *fault.Error
	if errors.As(err, &fe) && fe.Delay > 0 && fs.clock != nil {
		fs.clock.Advance(fe.Delay)
	}
	return fmt.Errorf("osabs: %w", err)
}

// Create makes (or truncates) a file and returns a handle positioned at 0.
func (fs *FS) Create(name string) *File {
	ino := &inode{}
	fs.files[name] = ino
	return &File{fs: fs, name: name, ino: ino}
}

// CreateWith makes a file with the given contents (workload inputs).
func (fs *FS) CreateWith(name string, data []byte) {
	fs.files[name] = &inode{data: append([]byte(nil), data...)}
}

// Open returns a handle on an existing file, positioned at 0.
func (fs *FS) Open(name string) (*File, error) {
	ino, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return &File{fs: fs, name: name, ino: ino}, nil
}

// Size returns a file's length without charging I/O time.
func (fs *FS) Size(name string) (int64, error) {
	ino, ok := fs.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return int64(len(ino.data)), nil
}

// Contents returns a copy of a file's bytes without charging I/O time
// (test and verification helper).
func (fs *FS) Contents(name string) ([]byte, error) {
	ino, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return append([]byte(nil), ino.data...), nil
}

// Remove deletes a file.
func (fs *FS) Remove(name string) error {
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(fs.files, name)
	return nil
}

// List returns the names of all files, sorted.
func (fs *FS) List() []string {
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// chargeRead costs a read of n bytes. Sequential continuations (seq) pay
// bandwidth only: the disk head is already positioned and readahead is
// streaming, so splitting one large read into block-sized chunks — as the
// interposed I/O of §4.4 does — costs the same as a single large read.
func (fs *FS) chargeRead(n int64, seq bool) {
	if fs.disk == nil {
		return
	}
	d := fs.disk.TransferTime(n)
	if seq {
		d -= fs.disk.Latency
	}
	fs.clock.Advance(d)
	fs.stats.ReadTime += d
	if fs.bd != nil {
		fs.bd.Add(sim.CatIORead, d)
	}
}

func (fs *FS) chargeWrite(n int64, seq bool) {
	if fs.disk == nil {
		return
	}
	d := fs.disk.TransferTime(n)
	if seq {
		d -= fs.disk.Latency
	}
	fs.clock.Advance(d)
	fs.stats.WriteTime += d
	if fs.bd != nil {
		fs.bd.Add(sim.CatIOWrite, d)
	}
}

// File is an open file handle with a seek position.
type File struct {
	fs     *FS
	name   string
	ino    *inode
	off    int64
	closed bool
	// seqNext is the offset a sequential continuation would start at; an
	// access elsewhere pays the disk's positioning latency again.
	seqNext int64
	touched bool
}

// Name returns the file's path.
func (f *File) Name() string { return f.name }

// Read fills p from the current position, charging disk time. It returns
// io.EOF at end of file like os.File.
func (f *File) Read(p []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if err := f.fs.injectIO(fault.OpFileRead); err != nil {
		return 0, err
	}
	if f.off >= int64(len(f.ino.data)) {
		return 0, io.EOF
	}
	seq := f.touched && f.off == f.seqNext
	n := copy(p, f.ino.data[f.off:])
	f.off += int64(n)
	f.seqNext = f.off
	f.touched = true
	f.fs.stats.BytesRead += int64(n)
	f.fs.stats.Reads++
	f.fs.chargeRead(int64(n), seq)
	return n, nil
}

// Write appends/overwrites at the current position, charging disk time.
func (f *File) Write(p []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if err := f.fs.injectIO(fault.OpFileWrite); err != nil {
		return 0, err
	}
	end := f.off + int64(len(p))
	if end > int64(len(f.ino.data)) {
		grown := make([]byte, end)
		copy(grown, f.ino.data)
		f.ino.data = grown
	}
	seq := f.touched && f.off == f.seqNext
	copy(f.ino.data[f.off:], p)
	f.off = end
	f.seqNext = f.off
	f.touched = true
	f.fs.stats.BytesWritten += int64(len(p))
	f.fs.stats.Writes++
	f.fs.chargeWrite(int64(len(p)), seq)
	return len(p), nil
}

// Seek repositions the handle like os.File.Seek.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if f.closed {
		return 0, ErrClosed
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		base = int64(len(f.ino.data))
	default:
		return 0, fmt.Errorf("osabs: bad whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("osabs: negative seek position %d", pos)
	}
	f.off = pos
	return pos, nil
}

// Close invalidates the handle.
func (f *File) Close() error {
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	return nil
}
