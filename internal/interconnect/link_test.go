package interconnect

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestTransferTimeLatencyPlusWire(t *testing.T) {
	l := &Link{Name: "test", Latency: 1000, PeakBps: 1e9} // 1 GB/s, 1us latency
	if got := l.TransferTime(0); got != 1000 {
		t.Fatalf("zero-byte transfer = %v, want latency 1000", got)
	}
	// 1e6 bytes at 1 GB/s = 1ms wire time.
	if got := l.TransferTime(1e6); got != 1000+sim.Millisecond {
		t.Fatalf("1MB transfer = %v, want %v", got, 1000+sim.Millisecond)
	}
}

func TestTransferTimeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	PCIe2x16H2D().TransferTime(-1)
}

func TestEffectiveBandwidthMonotone(t *testing.T) {
	// Property of the Figure 11 curve: effective bandwidth grows with
	// transfer size and never exceeds peak.
	l := PCIe2x16H2D()
	prev := 0.0
	for size := int64(4 * KB); size <= 32*MB; size *= 2 {
		eff := l.EffectiveBps(size)
		if eff < prev {
			t.Fatalf("effective bandwidth decreased at %d bytes: %v < %v", size, eff, prev)
		}
		if eff > l.PeakBps {
			t.Fatalf("effective bandwidth %v exceeds peak %v", eff, l.PeakBps)
		}
		prev = eff
	}
	// Large transfers should be close to peak (within 10%).
	if eff := l.EffectiveBps(512 * MB); eff < 0.9*l.PeakBps {
		t.Fatalf("512MB transfer achieves only %v of peak %v", eff, l.PeakBps)
	}
	// Small transfers are latency-bound: far below peak.
	if eff := l.EffectiveBps(4 * KB); eff > 0.2*l.PeakBps {
		t.Fatalf("4KB transfer achieves %v, expected latency-bound (<20%% of peak)", eff)
	}
}

func TestEffectiveBpsProperty(t *testing.T) {
	l := PCIe2x16D2H()
	f := func(raw uint32) bool {
		n := int64(raw)
		eff := l.EffectiveBps(n)
		return eff >= 0 && eff <= l.PeakBps+1 // +1 for float slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxIPCFigure2Shape(t *testing.T) {
	// Figure 2's qualitative claim: the IPC supportable over PCIe is far
	// below what the GPU's on-board memory supports, and the fabric links
	// sit in between.
	const clockHz = 800e6
	const bytesPerInstr = 0.2 // the paper's bt benchmark: IPC 50 on PCIe
	pcie := PCIe2x16H2D().MaxIPC(bytesPerInstr, clockHz)
	ht := HyperTransport().MaxIPC(bytesPerInstr, clockHz)
	qpi := QPI().MaxIPC(bytesPerInstr, clockHz)
	gddr := GTX295Memory().MaxIPC(bytesPerInstr, clockHz)
	if !(pcie < ht && ht < qpi && qpi < gddr) {
		t.Fatalf("IPC ordering violated: pcie=%v ht=%v qpi=%v gddr=%v", pcie, ht, qpi, gddr)
	}
	// bt supports IPC around 40 on PCIe (paper: "maximum achievable value
	// of IPC is 50 for bt"); accept the right order of magnitude.
	if pcie < 20 || pcie > 80 {
		t.Fatalf("bt IPC over PCIe = %v, want within [20,80]", pcie)
	}
}

func TestMaxIPCInverseOfRequiredBps(t *testing.T) {
	l := QPI()
	const clockHz = 800e6
	const bpi = 1.5
	ipc := l.MaxIPC(bpi, clockHz)
	if got := RequiredBps(ipc, clockHz, bpi); math.Abs(got-l.PeakBps) > 1 {
		t.Fatalf("RequiredBps(MaxIPC) = %v, want peak %v", got, l.PeakBps)
	}
}

func TestMaxIPCPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxIPC(0, 0) did not panic")
		}
	}()
	QPI().MaxIPC(0, 0)
}

func TestPresetsSane(t *testing.T) {
	links := []*Link{
		PCIe2x16H2D(), PCIe2x16D2H(), HyperTransport(), QPI(),
		GTX295Memory(), G280Memory(), SATADisk(),
	}
	seen := make(map[string]bool)
	for _, l := range links {
		if l.Name == "" {
			t.Fatal("preset with empty name")
		}
		if seen[l.Name] {
			t.Fatalf("duplicate preset name %q", l.Name)
		}
		seen[l.Name] = true
		if l.PeakBps <= 0 || l.Latency < 0 {
			t.Fatalf("%s: nonsensical parameters %+v", l.Name, l)
		}
	}
	// Relative ordering that the paper's Figure 2 depends on.
	if PCIe2x16H2D().PeakBps >= HyperTransport().PeakBps {
		t.Fatal("PCIe should be slower than HyperTransport")
	}
	if QPI().PeakBps >= G280Memory().PeakBps {
		t.Fatal("QPI should be slower than on-board GDDR")
	}
	if SATADisk().PeakBps >= PCIe2x16H2D().PeakBps {
		t.Fatal("disk should be slower than PCIe")
	}
}
