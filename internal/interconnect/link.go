// Package interconnect models the data links of the reference architecture
// in Figure 1 of the paper: the PCIe bus between system memory and the
// accelerator, the coherent fabrics (HyperTransport, QPI) between CPUs and
// system memory, the on-board GDDR memory of the accelerator, and the disk
// used by I/O-heavy workloads.
//
// A Link charges `latency + bytes/peak` per transfer, which yields the
// size-dependent effective bandwidth curve the paper measures in Figure 11:
// small transfers are latency-bound, large transfers approach peak.
package interconnect

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Link is a unidirectional data link with fixed per-transfer latency and
// peak bandwidth.
type Link struct {
	// Name identifies the link in reports ("PCIe 2.0 x16 H2D", ...).
	Name string
	// Latency is the fixed per-transfer setup cost (DMA descriptor setup,
	// doorbell, completion interrupt).
	Latency sim.Time
	// PeakBps is the peak bandwidth in bytes per second.
	PeakBps float64

	// Per-link transfer accounting, registered lazily on first use so
	// plain struct-literal links keep working.
	instrument         sync.Once
	nTransfers, nBytes *metrics.Counter
	nFaults            *metrics.Counter

	// inj, when set via SetInjector, is consulted by Transfer (the
	// fault-aware entry point); TransferTime stays infallible for the
	// analytic cost-model paths. Installed once at machine setup.
	inj   *fault.Injector
	injOp fault.Op
}

// SetInjector arms the link with a fault injector; every Transfer call
// consults it under the given operation class. Pass nil to disarm.
func (l *Link) SetInjector(in *fault.Injector, op fault.Op) {
	l.inj = in
	l.injOp = op
}

// TransferTime returns the virtual time needed to move n bytes across the
// link, and books the transfer against the link's metrics. Zero-byte
// transfers still pay the setup latency.
func (l *Link) TransferTime(n int64) sim.Time {
	l.instrument.Do(func() {
		r := metrics.Default()
		l.nTransfers = r.Counter(metrics.Label("link_transfers_total", "link", l.Name))
		l.nBytes = r.Counter(metrics.Label("link_bytes_total", "link", l.Name))
		l.nFaults = r.Counter(metrics.Label("link_faults_total", "link", l.Name))
	})
	l.nTransfers.Inc()
	l.nBytes.Add(n)
	return l.transferTime(n)
}

// Transfer is the fault-aware variant of TransferTime: it books the
// transfer, consults the link's injector, and returns the attempt's
// duration plus any injected error. A failed attempt still crosses the
// wire — the returned duration covers it (plus the timeout penalty for
// timeout faults) — but the data must not be considered delivered.
func (l *Link) Transfer(n int64) (sim.Time, error) {
	d := l.TransferTime(n)
	if l.inj == nil {
		return d, nil
	}
	if err := l.inj.Decide(l.injOp); err != nil {
		var fe *fault.Error
		if errors.As(err, &fe) {
			d += fe.Delay
		}
		l.nFaults.Inc()
		return d, fmt.Errorf("interconnect %s: %w", l.Name, err)
	}
	return d, nil
}

// transferTime is the pure cost model, shared with the analytic helpers
// (which must not count as traffic).
func (l *Link) transferTime(n int64) sim.Time {
	if n < 0 {
		panic(fmt.Sprintf("interconnect: negative transfer size %d on %s", n, l.Name))
	}
	wire := sim.Time(float64(n) / l.PeakBps * 1e9)
	return l.Latency + wire
}

// EffectiveBps returns the effective bandwidth (bytes/second) achieved by a
// single transfer of n bytes, i.e. n divided by TransferTime. This is the
// quantity plotted as boxes in Figure 11.
func (l *Link) EffectiveBps(n int64) float64 {
	t := l.transferTime(n)
	if t == 0 {
		return l.PeakBps
	}
	return float64(n) / t.Seconds()
}

// MaxIPC returns the highest instructions-per-cycle rate a kernel with the
// given memory intensity (bytes accessed per instruction) can sustain over
// this link at the given clock frequency. This is the analytic model behind
// Figure 2 of the paper.
func (l *Link) MaxIPC(bytesPerInstr, clockHz float64) float64 {
	if bytesPerInstr <= 0 || clockHz <= 0 {
		panic("interconnect: MaxIPC requires positive bytesPerInstr and clockHz")
	}
	return l.PeakBps / (bytesPerInstr * clockHz)
}

// RequiredBps returns the bandwidth demanded by a kernel executing at the
// given IPC and clock frequency with the given memory intensity.
func RequiredBps(ipc, clockHz, bytesPerInstr float64) float64 {
	return ipc * clockHz * bytesPerInstr
}

const (
	// KB, MB, GB are binary byte multiples used throughout the models.
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// The presets below approximate the hardware of the paper's testbed
// (Section 5): a PCIe 2.0 x16 link to an NVIDIA G280 with on-board GDDR3,
// AMD HyperTransport and Intel QPI as the CPU fabrics of Figure 2, and a
// SATA-class disk for the I/O model.

// PCIe2x16H2D returns the host-to-device direction of a PCIe 2.0 x16 link.
func PCIe2x16H2D() *Link {
	return &Link{Name: "PCIe 2.0 x16 H2D", Latency: 12 * sim.Microsecond, PeakBps: 6.0 * GB}
}

// PCIe2x16D2H returns the device-to-host direction of a PCIe 2.0 x16 link.
// Device-to-host DMA is slightly slower on the paper's testbed (Figure 11
// plots distinct curves for the two directions).
func PCIe2x16D2H() *Link {
	return &Link{Name: "PCIe 2.0 x16 D2H", Latency: 14 * sim.Microsecond, PeakBps: 5.2 * GB}
}

// HyperTransport returns an AMD HyperTransport fabric link (Figure 2).
func HyperTransport() *Link {
	return &Link{Name: "HyperTransport", Latency: 200 * sim.Nanosecond, PeakBps: 10.4 * GB}
}

// QPI returns an Intel QuickPath fabric link (Figure 2).
func QPI() *Link {
	return &Link{Name: "QPI", Latency: 150 * sim.Nanosecond, PeakBps: 12.8 * GB}
}

// GTX295Memory returns the on-board GDDR3 memory interface of the NVIDIA
// GTX295 referenced by Figure 2 (~112 GB/s per GPU).
func GTX295Memory() *Link {
	return &Link{Name: "NVIDIA GTX295 Memory", Latency: 400 * sim.Nanosecond, PeakBps: 112 * GB}
}

// G280Memory returns the on-board GDDR3 interface of the G280 card used in
// the evaluation (~141 GB/s peak, 512-bit bus).
func G280Memory() *Link {
	return &Link{Name: "NVIDIA G280 Memory", Latency: 400 * sim.Nanosecond, PeakBps: 141 * GB}
}

// SATADisk returns a 2009-era SATA disk: the source/sink of the Parboil
// input and output files.
func SATADisk() *Link {
	return &Link{Name: "SATA disk", Latency: 4 * sim.Millisecond, PeakBps: 90 * MB}
}
