package fault_test

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/gmac"
	"repro/internal/fault"
	"repro/machine"
)

// corpusFiles returns the committed recorded-workload corpus
// (testdata/corpus/*.oplog, regenerated with `make record-corpus`).
func corpusFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "corpus", "*.oplog"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	return files
}

// TestChaosCorpusReplay drives the recorded-workload corpus through the
// runtime with a recoverable fault schedule armed on the device: every
// real application op stream doubles as a chaos scenario. Transparent
// retries must absorb each injection — the replay completes, the
// invariants hold, and nothing escalates to device loss or degradation.
func TestChaosCorpusReplay(t *testing.T) {
	files := corpusFiles(t)
	if len(files) == 0 {
		t.Skip("no recorded corpus (run `make record-corpus`)")
	}
	schedules := []struct {
		name  string
		rules []fault.Rule
	}{
		{"dma-transient", []fault.Rule{
			fault.Prob(fault.OpDMAH2D, 0.08, fault.KindTransient),
			fault.Prob(fault.OpDMAD2H, 0.05, fault.KindTransient),
		}},
		{"launch-every-4", []fault.Rule{
			fault.EveryK(fault.OpLaunch, 4, fault.KindTransient),
		}},
	}
	injected := int64(0)
	retried := int64(0)
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		l, err := gmac.DecodeOpLog(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, sched := range schedules {
			sched := sched
			t.Run(filepath.Base(path)+"/"+sched.name, func(t *testing.T) {
				// The corpus is recorded on the small evaluation machine
				// (128 MB accelerator); replay on the same shape.
				mcfg := machine.PaperTestbedConfig()
				mcfg.Accelerators[0].MemSize = 128 << 20
				m, err := machine.New(mcfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg := gmac.ReplayConfig(l.Header)
				cfg.MaxRetries = 6 // keep recoverable schedules inside the budget
				// Run the online race detector throughout: injected faults
				// and their retries are derived events, so even a chaos
				// replay of a well-synchronised workload must stay silent.
				cfg.RaceDetect = true
				ctx, err := gmac.NewContext(m, cfg)
				if err != nil {
					t.Fatal(err)
				}
				inj := fault.NewInjector(1, m.Clock, sched.rules...)
				m.Device().SetFaultInjector(inj)
				report, err := ctx.Replay(l, gmac.ReplayOptions{})
				if err != nil {
					t.Fatalf("replay under %s: %v", sched.name, err)
				}
				if report.Skipped != 0 || report.Errors != 0 {
					t.Fatalf("replay skipped %d, errored %d", report.Skipped, report.Errors)
				}
				mgr := ctx.Manager()
				if mgr.DeviceLost() {
					t.Fatalf("recoverable schedule escalated to device loss after %d injections", inj.Total())
				}
				if err := mgr.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				st := ctx.Stats()
				if st.RetryGiveups != 0 || st.DegradedObjects != 0 {
					t.Errorf("recoverable schedule gave up: %+v", st)
				}
				if st.RacesDetected != 0 {
					t.Errorf("race detector flagged %d false positive(s) under %s:\n%v",
						st.RacesDetected, sched.name, mgr.Races())
				}
				injected += inj.Total()
				retried += st.Retries
			})
		}
	}
	// Across the whole corpus the schedules must actually bite: a corpus
	// that never triggers an injection validates nothing.
	if injected == 0 {
		t.Error("corpus replays injected nothing; the suite is vacuous")
	}
	if injected > 0 && retried == 0 {
		t.Errorf("%d injections but no retries recorded", injected)
	}
}
