// Package fault is the deterministic fault-injection subsystem of the
// chaos harness: a seeded, schedule-driven injector that the interconnect,
// accelerator and filesystem layers consult before performing an
// operation. Schedules are expressed over per-operation sequence numbers
// ("fail the 3rd DMA", "fail every 5th kernel launch") or a seeded
// probability, so a given (seed, schedule) pair reproduces exactly the
// same injections at exactly the same virtual times — replaying a chaos
// failure is as simple as re-running with the same seed.
//
// The injector never mutates the layers it is installed in; it only
// decides. Each layer reacts to a decision in its own terms: a faulted DMA
// still occupies the engine for the attempt duration but does not deliver
// data, a faulted launch never runs the kernel body, a timeout charges
// extra virtual latency, and a device-lost fault is permanent.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Op identifies the class of operation a fault applies to.
type Op uint8

// Injectable operation classes.
const (
	// OpDMAH2D is a host-to-device DMA transfer.
	OpDMAH2D Op = iota
	// OpDMAD2H is a device-to-host DMA transfer.
	OpDMAD2H
	// OpLaunch is a kernel launch.
	OpLaunch
	// OpFileRead is a filesystem read.
	OpFileRead
	// OpFileWrite is a filesystem write.
	OpFileWrite

	nOps
)

func (o Op) String() string {
	switch o {
	case OpDMAH2D:
		return "dma-h2d"
	case OpDMAD2H:
		return "dma-d2h"
	case OpLaunch:
		return "launch"
	case OpFileRead:
		return "file-read"
	case OpFileWrite:
		return "file-write"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Kind classifies what an injected fault does to the operation.
type Kind uint8

// Fault kinds.
const (
	// KindTransient fails the operation once; a retry may succeed.
	KindTransient Kind = iota
	// KindTimeout fails the operation after charging an extra virtual
	// delay (the operation "hung" before the error surfaced).
	KindTimeout
	// KindCorrupt fails the operation after scribbling its destination:
	// detected corruption. Data from the failed attempt must never be
	// trusted; a retry must overwrite it entirely.
	KindCorrupt
	// KindDeviceLost is permanent: the device is declared lost and every
	// subsequent operation on it fails fast.
	KindDeviceLost
)

func (k Kind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindTimeout:
		return "timeout"
	case KindCorrupt:
		return "corrupt"
	case KindDeviceLost:
		return "device-lost"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ErrInjected is the sentinel wrapped by every injected fault; retry logic
// matches it with errors.Is to distinguish injected faults from
// programming errors (which must not be retried).
var ErrInjected = errors.New("fault: injected failure")

// ErrDeviceLost is the sentinel for permanent device loss. Errors of
// KindDeviceLost match both ErrInjected and ErrDeviceLost.
var ErrDeviceLost = errors.New("fault: device lost")

// DefaultTimeoutDelay is the virtual latency charged by KindTimeout faults
// whose rule does not set an explicit Delay.
const DefaultTimeoutDelay = 1 * sim.Millisecond

// Error is one injected fault.
type Error struct {
	// Op and Kind identify what failed and how.
	Op   Op
	Kind Kind
	// Seq is the 1-based per-Op sequence number of the failed operation.
	Seq int64
	// At is the virtual time the decision was made.
	At sim.Time
	// Delay is the extra virtual latency the caller must charge before
	// surfacing the error (non-zero for KindTimeout).
	Delay sim.Time
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s on %s #%d at %v", e.Kind, e.Op, e.Seq, e.At)
}

// Is matches ErrInjected for every injected fault and additionally
// ErrDeviceLost for permanent ones.
func (e *Error) Is(target error) bool {
	if target == ErrInjected {
		return true
	}
	return target == ErrDeviceLost && e.Kind == KindDeviceLost
}

// Rule is one entry of a fault schedule. Exactly one trigger field (Nth,
// Every, After, Prob) should be set; the constructors below build
// well-formed rules. Delay customises the timeout penalty.
type Rule struct {
	// Op selects the operation class the rule applies to.
	Op Op
	// Kind selects what the fault does.
	Kind Kind
	// Nth fires on exactly the Nth operation (1-based).
	Nth int64
	// Every fires on every Every-th operation (seq % Every == 0).
	Every int64
	// After fires on every operation with seq >= After.
	After int64
	// Prob fires with the given probability, drawn from the injector's
	// seeded generator.
	Prob float64
	// Delay overrides DefaultTimeoutDelay for KindTimeout faults.
	Delay sim.Time
}

// Nth returns a rule failing exactly the n-th (1-based) op of the class.
func Nth(op Op, n int64, kind Kind) Rule { return Rule{Op: op, Kind: kind, Nth: n} }

// EveryK returns a rule failing every k-th op of the class.
func EveryK(op Op, k int64, kind Kind) Rule { return Rule{Op: op, Kind: kind, Every: k} }

// After returns a rule failing every op of the class from the n-th on —
// with KindDeviceLost this is the "device falls off the bus" schedule.
func After(op Op, n int64, kind Kind) Rule { return Rule{Op: op, Kind: kind, After: n} }

// Prob returns a rule failing each op of the class with probability p.
func Prob(op Op, p float64, kind Kind) Rule { return Rule{Op: op, Kind: kind, Prob: p} }

// Injection is one log entry: an injected fault with its virtual time.
// The replay test compares whole logs across runs for exact equality.
type Injection struct {
	Op   Op       `json:"op"`
	Kind Kind     `json:"kind"`
	Seq  int64    `json:"seq"`
	At   sim.Time `json:"at"`
}

// maxLog bounds the injection log; chaos schedules stay far below it.
const maxLog = 1 << 16

// Injector decides, per operation, whether to inject a fault. It is safe
// for concurrent use; decisions are serialised so the seeded probability
// stream is consumed deterministically for a deterministic call order.
type Injector struct {
	mu    sync.Mutex
	clock *sim.Clock
	rng   *rand.Rand
	seed  int64
	rules []Rule
	seq   [nOps]int64
	log   []Injection
	count [nOps]int64
	mets  [nOps]*metrics.Counter
}

// NewInjector builds an injector over the given schedule. clock may be nil
// (injections are then logged at time 0); seed drives the probabilistic
// rules.
func NewInjector(seed int64, clock *sim.Clock, rules ...Rule) *Injector {
	in := &Injector{
		clock: clock,
		rng:   rand.New(rand.NewSource(seed)),
		seed:  seed,
		rules: rules,
	}
	r := metrics.Default()
	for op := Op(0); op < nOps; op++ {
		in.mets[op] = r.Counter(metrics.Label("fault_injected_total", "op", op.String()))
	}
	return in
}

// Seed returns the seed the injector was built with (for failure replay).
func (in *Injector) Seed() int64 { return in.seed }

// Decide advances the per-op sequence number and returns an *Error if the
// schedule injects a fault for this operation, nil otherwise. The first
// matching rule wins.
func (in *Injector) Decide(op Op) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seq[op]++
	seq := in.seq[op]
	for _, r := range in.rules {
		if r.Op != op {
			continue
		}
		hit := false
		switch {
		case r.Nth > 0:
			hit = seq == r.Nth
		case r.Every > 0:
			hit = seq%r.Every == 0
		case r.After > 0:
			hit = seq >= r.After
		case r.Prob > 0:
			hit = in.rng.Float64() < r.Prob
		}
		if !hit {
			continue
		}
		var at sim.Time
		if in.clock != nil {
			at = in.clock.Now()
		}
		delay := r.Delay
		if r.Kind == KindTimeout && delay == 0 {
			delay = DefaultTimeoutDelay
		}
		if len(in.log) < maxLog {
			in.log = append(in.log, Injection{Op: op, Kind: r.Kind, Seq: seq, At: at})
		}
		in.count[op]++
		in.mets[op].Inc()
		return &Error{Op: op, Kind: r.Kind, Seq: seq, At: at, Delay: delay}
	}
	return nil
}

// Seq returns how many operations of the class have been decided.
func (in *Injector) Seq(op Op) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq[op]
}

// Count returns how many faults were injected for the class.
func (in *Injector) Count(op Op) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.count[op]
}

// Total returns the total number of injected faults.
func (in *Injector) Total() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var t int64
	for _, c := range in.count {
		t += c
	}
	return t
}

// Log returns a copy of the injection log, in decision order.
func (in *Injector) Log() []Injection {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Injection(nil), in.log...)
}
