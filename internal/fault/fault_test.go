package fault

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestNthAndEveryKSchedules(t *testing.T) {
	in := NewInjector(1, nil,
		Nth(OpDMAH2D, 3, KindTransient),
		EveryK(OpLaunch, 2, KindTransient),
	)
	var h2dFails, launchFails []int64
	for i := int64(1); i <= 8; i++ {
		if err := in.Decide(OpDMAH2D); err != nil {
			h2dFails = append(h2dFails, i)
		}
		if err := in.Decide(OpLaunch); err != nil {
			launchFails = append(launchFails, i)
		}
	}
	if !reflect.DeepEqual(h2dFails, []int64{3}) {
		t.Errorf("Nth(3) failed ops %v, want [3]", h2dFails)
	}
	if !reflect.DeepEqual(launchFails, []int64{2, 4, 6, 8}) {
		t.Errorf("EveryK(2) failed ops %v, want [2 4 6 8]", launchFails)
	}
	if in.Count(OpDMAH2D) != 1 || in.Count(OpLaunch) != 4 || in.Total() != 5 {
		t.Errorf("counts: h2d=%d launch=%d total=%d", in.Count(OpDMAH2D), in.Count(OpLaunch), in.Total())
	}
}

func TestAfterIsPermanent(t *testing.T) {
	in := NewInjector(1, nil, After(OpDMAD2H, 4, KindDeviceLost))
	for i := int64(1); i <= 6; i++ {
		err := in.Decide(OpDMAD2H)
		if i < 4 && err != nil {
			t.Fatalf("op %d unexpectedly failed: %v", i, err)
		}
		if i >= 4 {
			if err == nil {
				t.Fatalf("op %d unexpectedly succeeded", i)
			}
			if !errors.Is(err, ErrDeviceLost) || !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d error %v does not match the sentinels", i, err)
			}
		}
	}
}

func TestErrorSentinels(t *testing.T) {
	transient := &Error{Op: OpDMAH2D, Kind: KindTransient, Seq: 1}
	if !errors.Is(transient, ErrInjected) {
		t.Error("transient fault does not match ErrInjected")
	}
	if errors.Is(transient, ErrDeviceLost) {
		t.Error("transient fault matches ErrDeviceLost")
	}
	lost := &Error{Op: OpLaunch, Kind: KindDeviceLost, Seq: 2}
	if !errors.Is(lost, ErrDeviceLost) || !errors.Is(lost, ErrInjected) {
		t.Error("device-lost fault does not match both sentinels")
	}
}

func TestTimeoutCarriesDelay(t *testing.T) {
	in := NewInjector(1, nil, Nth(OpFileRead, 1, KindTimeout))
	err := in.Decide(OpFileRead)
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("Decide returned %v, want *Error", err)
	}
	if fe.Delay != DefaultTimeoutDelay {
		t.Errorf("timeout delay = %v, want default %v", fe.Delay, DefaultTimeoutDelay)
	}
	custom := Nth(OpFileRead, 1, KindTimeout)
	custom.Delay = 5 * sim.Microsecond
	in2 := NewInjector(1, nil, custom)
	err = in2.Decide(OpFileRead)
	if !errors.As(err, &fe) || fe.Delay != 5*sim.Microsecond {
		t.Errorf("custom delay not honoured: %v", err)
	}
}

// TestProbReplay is the package-level half of the determinism acceptance
// criterion: the same seed and schedule reproduce the same decisions.
func TestProbReplay(t *testing.T) {
	run := func(seed int64) []Injection {
		clock := sim.NewClock()
		in := NewInjector(seed, clock, Prob(OpDMAH2D, 0.3, KindTransient))
		for i := 0; i < 200; i++ {
			clock.Advance(sim.Microsecond)
			in.Decide(OpDMAH2D)
		}
		return in.Log()
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("probabilistic schedule injected nothing in 200 ops")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different injection logs:\n%v\n%v", a, b)
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical logs (suspicious)")
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	in := NewInjector(1, nil,
		Nth(OpLaunch, 2, KindCorrupt),
		EveryK(OpLaunch, 2, KindTransient),
	)
	in.Decide(OpLaunch) // #1: no rule
	err := in.Decide(OpLaunch)
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindCorrupt {
		t.Fatalf("op #2 got %v, want the first rule's corrupt fault", err)
	}
}
