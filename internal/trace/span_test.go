package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestSpanNestingAndParents(t *testing.T) {
	tr := NewTracer(16)
	inv := tr.Begin("invoke", "scale", 100)
	fl := tr.Begin("flush", "", 110)
	tr.End(fl, 150)
	tr.End(inv, 200)
	top := tr.Begin("sync", "", 300)
	tr.End(top, 400)

	spans := tr.Spans()
	if len(spans) != 3 || tr.TotalSpans() != 3 {
		t.Fatalf("got %d spans (total %d), want 3", len(spans), tr.TotalSpans())
	}
	// Completed innermost-first.
	if spans[0].Name != "flush" || spans[0].Parent != inv {
		t.Fatalf("flush span = %+v, want parent %d", spans[0], inv)
	}
	if spans[1].Name != "invoke" || spans[1].Parent != 0 {
		t.Fatalf("invoke span = %+v, want no parent", spans[1])
	}
	if d := spans[0].Duration(); d != 40 {
		t.Fatalf("flush duration = %v, want 40", d)
	}
	if spans[2].Parent != 0 {
		t.Fatalf("sync span has stale parent %d", spans[2].Parent)
	}
}

func TestEndClosesAbandonedChildren(t *testing.T) {
	tr := NewTracer(16)
	outer := tr.Begin("invoke", "", 10)
	tr.Begin("flush", "", 20) // error path: never explicitly ended
	tr.End(outer, 50)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	for _, s := range spans {
		if s.End != 50 {
			t.Fatalf("span %s end = %v, want 50", s.Name, s.End)
		}
	}
}

func TestWriteJSONChromeFormat(t *testing.T) {
	tr := NewTracer(16)
	id := tr.Begin("fault", "write in Invalid", 1000)
	tr.Log().Append(Event{At: 1200, Kind: EvFetch, Addr: 0x1000, Size: 4096})
	tr.End(id, 2000)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d trace events, want 2", len(doc.TraceEvents))
	}
	x := doc.TraceEvents[0]
	if x.Name != "fault" || x.Phase != "X" || x.TS != 1.0 || x.Dur != 1.0 {
		t.Fatalf("span event = %+v", x)
	}
	i := doc.TraceEvents[1]
	if i.Name != "fetch" || i.Phase != "i" {
		t.Fatalf("instant event = %+v", i)
	}
}

// TestLogConcurrentAppend exercises the ring from many goroutines; run
// with -race it proves the mutex covers every method.
func TestLogConcurrentAppend(t *testing.T) {
	l := New(64)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append(Event{At: sim.Time(i), Kind: EvFault, Note: "w"})
				if i%64 == 0 {
					_ = l.Events()
					_ = l.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Total() != workers*per {
		t.Fatalf("total = %d, want %d", l.Total(), workers*per)
	}
	if l.Len() != 64 {
		t.Fatalf("len = %d, want 64", l.Len())
	}
}

// TestTracerConcurrentReaders has one writer (the simulated runtime) and
// concurrent readers (the introspection endpoint).
func TestTracerConcurrentReaders(t *testing.T) {
	tr := NewTracer(32)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = tr.Spans()
					var buf bytes.Buffer
					_ = tr.WriteJSON(&buf)
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		id := tr.Begin("fault", "", sim.Time(i))
		tr.End(id, sim.Time(i+1))
	}
	close(done)
	wg.Wait()
	if tr.TotalSpans() != 2000 {
		t.Fatalf("total spans = %d, want 2000", tr.TotalSpans())
	}
}
