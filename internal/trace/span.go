package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/sim"
)

// SpanID identifies one span within a Tracer. Zero is "no span" — the
// manager uses it as the disabled sentinel — so real IDs start at 1.
type SpanID uint64

// Span is one completed timed operation: an API call (Invoke, Sync), a
// fault resolution, or a block transfer nested inside one of those. Parent
// links spans into a tree, so a run can be rendered as a flame chart.
type Span struct {
	ID     SpanID   `json:"id"`
	Parent SpanID   `json:"parent,omitempty"`
	Name   string   `json:"name"`
	Note   string   `json:"note,omitempty"`
	Start  sim.Time `json:"start_ns"`
	End    sim.Time `json:"end_ns"`
}

// Duration returns the span's virtual duration.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Tracer layers span tracing on an event Log: instantaneous protocol
// events go to the Log, while Begin/End bracket timed operations into
// Spans with parent IDs derived from the currently open span stack. The
// runtime is single-threaded per manager, so the open-span stack needs no
// per-goroutine bookkeeping; the Tracer itself is mutex-protected so the
// introspection endpoint can read it while the run is in flight.
type Tracer struct {
	mu     sync.Mutex
	log    *Log
	spans  []Span // bounded ring of completed spans
	next   int
	total  int64
	nextID SpanID
	open   []Span // stack of in-flight spans (End not yet seen)
}

// NewTracer returns a tracer retaining the most recent capacity completed
// spans and capacity log events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{
		log:   New(capacity),
		spans: make([]Span, 0, capacity),
	}
}

// Log returns the tracer's event log, for use as the manager's event sink.
func (t *Tracer) Log() *Log { return t.log }

// Begin opens a span at virtual time `at`. Its parent is the innermost
// span still open, if any.
//
//adsm:noalloc
func (t *Tracer) Begin(name, note string, at sim.Time) SpanID {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := Span{ID: t.nextID, Name: name, Note: note, Start: at}
	if n := len(t.open); n > 0 {
		s.Parent = t.open[n-1].ID
	}
	t.open = append(t.open, s) //adsm:allow noalloc: amortized; the open-span stack keeps its capacity across spans, so steady state never grows it
	return s.ID
}

// End closes the span with the given id at virtual time `at`. Any inner
// spans left open are closed at the same instant (defensive: an error
// return path skipped their End).
//
//adsm:noalloc
func (t *Tracer) End(id SpanID, at sim.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for n := len(t.open); n > 0; n = len(t.open) {
		s := t.open[n-1]
		t.open = t.open[:n-1]
		s.End = at
		t.record(s)
		if s.ID == id {
			return
		}
	}
}

// record appends a completed span to the bounded ring. Caller holds t.mu.
//
//adsm:noalloc
func (t *Tracer) record(s Span) {
	if len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, s) //adsm:allow noalloc: guarded by len < cap, so the preallocated ring's backing array never grows
	} else {
		t.spans[t.next] = s
		t.next = (t.next + 1) % len(t.spans)
	}
	t.total++
}

// Spans returns the retained completed spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.spans))
	out = append(out, t.spans[t.next:]...)
	out = append(out, t.spans[:t.next]...)
	return out
}

// TotalSpans returns the number of spans ever completed.
func (t *Tracer) TotalSpans() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// WriteJSON exports the retained spans and events in the Chrome
// trace_event format (the JSON Array Format with metadata wrapper), ready
// to load into chrome://tracing or Perfetto. Spans become complete ("X")
// events; log events become instant ("i") events. Virtual nanoseconds map
// onto the format's microsecond timestamps.
func (t *Tracer) WriteJSON(w io.Writer) error {
	type chromeEvent struct {
		Name  string         `json:"name"`
		Cat   string         `json:"cat"`
		Phase string         `json:"ph"`
		TS    float64        `json:"ts"`
		Dur   *float64       `json:"dur,omitempty"`
		Scope string         `json:"s,omitempty"`
		PID   int            `json:"pid"`
		TID   int            `json:"tid"`
		Args  map[string]any `json:"args,omitempty"`
	}
	us := func(d sim.Time) float64 { return float64(d) / 1e3 }

	events := make([]chromeEvent, 0, len(t.Spans())+t.log.Len())
	for _, s := range t.Spans() {
		dur := us(s.Duration())
		args := map[string]any{"id": uint64(s.ID)}
		if s.Parent != 0 {
			args["parent"] = uint64(s.Parent)
		}
		if s.Note != "" {
			args["note"] = s.Note
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: "adsm", Phase: "X",
			TS: us(s.Start), Dur: &dur, PID: 1, TID: 1, Args: args,
		})
	}
	for _, e := range t.log.Events() {
		args := map[string]any{}
		if e.Size > 0 {
			args["addr"] = fmt.Sprintf("%#x", uint64(e.Addr))
			args["size"] = e.Size
		}
		if e.From != "" || e.To != "" {
			args["from"], args["to"] = e.From, e.To
		}
		if e.Note != "" {
			args["note"] = e.Note
		}
		events = append(events, chromeEvent{
			Name: e.Kind.String(), Cat: "event", Phase: "i",
			TS: us(e.At), Scope: "t", PID: 1, TID: 2, Args: args,
		})
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	for i, ev := range events {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
