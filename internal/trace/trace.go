// Package trace provides a bounded in-memory event log for the ADSM
// runtime: page faults, block state transitions, transfers, evictions and
// API events, each stamped with virtual time. It is the observability
// surface the original GMAC exposed through its debug build — here it also
// powers the cmd/adsmtrace demonstration and white-box protocol tests.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Kind classifies an event.
type Kind uint8

// Event kinds, in rough lifecycle order.
const (
	EvAlloc Kind = iota
	EvFree
	EvFault
	EvTransition
	EvFlush
	EvFetch
	EvEvict
	EvInvoke
	EvSync
	EvRetry
	EvDegrade
	EvDeviceLost
)

func (k Kind) String() string {
	switch k {
	case EvAlloc:
		return "alloc"
	case EvFree:
		return "free"
	case EvFault:
		return "fault"
	case EvTransition:
		return "state"
	case EvFlush:
		return "flush"
	case EvFetch:
		return "fetch"
	case EvEvict:
		return "evict"
	case EvInvoke:
		return "invoke"
	case EvSync:
		return "sync"
	case EvRetry:
		return "retry"
	case EvDegrade:
		return "degrade"
	case EvDeviceLost:
		return "device-lost"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded runtime occurrence.
type Event struct {
	// At is the virtual time of the event.
	At sim.Time
	// Kind classifies it.
	Kind Kind
	// Addr and Size locate the block or object involved (zero for API
	// events without a range).
	Addr mem.Addr
	Size int64
	// From and To carry state names for transitions, or free-form detail.
	From, To string
	// Note carries the kernel name or other context.
	Note string
}

// String renders one event as a log line.
func (e Event) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%12s  %-6s", e.At, e.Kind)
	if e.Size > 0 {
		fmt.Fprintf(&sb, " [%#x,+%d)", uint64(e.Addr), e.Size)
	}
	if e.From != "" || e.To != "" {
		fmt.Fprintf(&sb, " %s->%s", e.From, e.To)
	}
	if e.Note != "" {
		fmt.Fprintf(&sb, " %s", e.Note)
	}
	return sb.String()
}

// Log is a bounded ring of events. The zero value is unusable; use New.
// All methods are safe for concurrent use: the introspection endpoint
// reads the ring while the runtime appends to it.
type Log struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	total int64
}

// New returns a log keeping the most recent capacity events.
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Log{ring: make([]Event, 0, capacity)}
}

// Append records an event, evicting the oldest if the ring is full.
//
//adsm:noalloc
func (l *Log) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e) //adsm:allow noalloc: guarded by len < cap, so the preallocated ring's backing array never grows
	} else {
		l.ring[l.next] = e
		l.next = (l.next + 1) % len(l.ring)
	}
	l.total++
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// Total returns the number of events ever recorded.
func (l *Log) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Events returns the retained events, oldest first.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Filter returns the retained events of the given kind, oldest first.
func (l *Log) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// String renders the whole retained window.
func (l *Log) String() string {
	var sb strings.Builder
	for _, e := range l.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
