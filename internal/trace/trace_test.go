package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRingRetention(t *testing.T) {
	l := New(3)
	for i := 0; i < 5; i++ {
		l.Append(Event{At: sim.Time(i), Kind: EvFault})
	}
	if l.Len() != 3 || l.Total() != 5 {
		t.Fatalf("len=%d total=%d", l.Len(), l.Total())
	}
	evs := l.Events()
	if evs[0].At != 2 || evs[2].At != 4 {
		t.Fatalf("ring order wrong: %v", evs)
	}
}

func TestFilter(t *testing.T) {
	l := New(10)
	l.Append(Event{Kind: EvFault})
	l.Append(Event{Kind: EvFlush})
	l.Append(Event{Kind: EvFault})
	if got := len(l.Filter(EvFault)); got != 2 {
		t.Fatalf("Filter = %d", got)
	}
	if got := len(l.Filter(EvSync)); got != 0 {
		t.Fatalf("Filter(empty) = %d", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: sim.Millisecond, Kind: EvTransition, Addr: 0x1000, Size: 4096,
		From: "ReadOnly", To: "Dirty", Note: "w"}
	s := e.String()
	for _, want := range []string{"state", "0x1000", "ReadOnly->Dirty", "w"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
	// Kind names are stable.
	names := map[Kind]string{
		EvAlloc: "alloc", EvFree: "free", EvFault: "fault", EvTransition: "state",
		EvFlush: "flush", EvFetch: "fetch", EvEvict: "evict", EvInvoke: "invoke", EvSync: "sync",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("Kind %d = %q want %q", k, k.String(), want)
		}
	}
}

func TestZeroCapacityDefaults(t *testing.T) {
	l := New(0)
	for i := 0; i < 2000; i++ {
		l.Append(Event{Kind: EvFault})
	}
	if l.Len() != 1024 {
		t.Fatalf("default capacity = %d", l.Len())
	}
	if !strings.Contains(l.String(), "fault") {
		t.Fatal("String() lost events")
	}
}
