GO ?= go

.PHONY: all check fmt vet build test race bench smoke clean

all: check

# The CI gate: formatting, static checks, build, and the race-enabled suite.
check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Fast end-to-end sanity: one small figure run with the JSON summary.
smoke:
	$(GO) run ./cmd/gmacbench -small -json /tmp/gmacbench-smoke.json fig8

clean:
	$(GO) clean ./...
