GO ?= go
FUZZTIME ?= 30s

.PHONY: all check fmt vet vet-json build test race bench bench-micro bench-contended bench-conformance bench-gate baseline smoke fuzz chaos record-corpus clean FORCE

all: check

# The CI gate: formatting, static checks, build, and the race-enabled suite.
check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Static analysis: the standard go vet suite, then adsmvet — the ADSM
# multichecker (allowcheck, coherence, lanepair, lockorder, modecheck,
# noalloc, statecase; see docs/static-analysis.md) — driven through
# `go vet -vettool` so every package, its _test.go files, and the cmd/
# mains are analyzed, and results land in the build cache (keyed on the
# tool's -V=full version, which folds in the Go toolchain version, so a
# Go upgrade invalidates them along with the rebuilt tool). Any
# diagnostic fails the build. `make vet-json` writes the machine-readable
# report CI archives as an artifact.
vet: bin/adsmvet
	$(GO) vet ./...
	$(GO) vet -vettool=$(abspath bin/adsmvet) ./...

vet-json: bin/adsmvet
	./bin/adsmvet -json ./... > adsmvet.json || true
	@echo wrote adsmvet.json

bin/adsmvet: FORCE
	$(GO) build -o bin/adsmvet ./cmd/adsmvet

FORCE:

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Hot-path microbenchmarks (fault service, span batching, eviction,
# registry lookup), repeated so benchstat can tell noise from signal.
bench-micro:
	$(GO) test -bench 'BenchmarkFault|BenchmarkStreamingFaults|BenchmarkRollingEvict|BenchmarkBlockLookup' \
		-benchmem -benchtime=100x -count=3 -run '^$$' ./internal/benchgate ./internal/core

# The contended-lane sweep: N host lanes faulting on disjoint objects
# through the sharded registry/MMU. Run without -race (the detector's
# overhead drowns the wall-clock signal; the -race interleaving coverage
# lives in bench-conformance).
bench-contended:
	$(GO) test -bench 'BenchmarkContendedFaults' \
		-benchmem -benchtime=100x -count=3 -run '^$$' ./internal/benchgate

# The conformance half of the bench gate, under the race detector:
# batched runs byte-identical to the unbatched oracle on every workload,
# replay round trip, and the sharded registry/MMU lane stress.
bench-conformance:
	$(GO) test -race -count=1 -run 'Batching' ./internal/workloads
	$(GO) test -race -count=1 \
		-run 'TestRegistryConcurrentLanes|TestIndexRebuildStorm|TestRegShardMask|TestMMUConcurrentLanes|SpanFaultBatching' \
		./internal/core ./internal/hostmmu

# The benchmark-regression gate: re-run the micro + figure suites and
# compare against the committed baseline (see docs/performance.md).
bench-gate:
	$(GO) run ./cmd/gmacbench -small -benchtime 0.3s -check BENCH_PR9.json

# Refresh the committed baseline after an intentional model change.
baseline:
	$(GO) run ./cmd/gmacbench -small -benchtime 0.5s -baseline BENCH_PR9.json

# Fast end-to-end sanity: one small figure run with the JSON summary.
smoke:
	$(GO) run ./cmd/gmacbench -small -json /tmp/gmacbench-smoke.json fig8

# Native fuzzing of the interval tree, the manager op stream, the oplog
# wire decoder, and the race analyser, FUZZTIME per target (see
# docs/testing.md). The decoder and race-check fuzzers seed from the
# recorded corpus in testdata/corpus/.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzRBTree$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzManagerOps$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzOpLogDecode$$' -fuzztime $(FUZZTIME) ./internal/oplog
	$(GO) test -run '^$$' -fuzz '^FuzzRaceCheck$$' -fuzztime $(FUZZTIME) ./internal/racecheck

# Re-record the workload op-stream corpus (testdata/corpus/*.oplog): one
# stream per (small Parboil workload, GMAC protocol). The chaos suite
# replays these under fault schedules, and the oplog decoder fuzzer seeds
# from them. Regenerate after changing the wire format or the workloads,
# and commit the result.
record-corpus:
	$(GO) run ./cmd/gmacbench -small -record testdata/corpus

# The chaos conformance suite under the race detector: fault-schedule
# matrix, replay determinism, degraded-mode recovery, I/O fault paths.
chaos:
	$(GO) test -race -count=1 ./internal/fault/
	$(GO) test -race -count=1 -run 'Chaos|Fault|Inject|DeviceLost|Degrade' ./...

clean:
	$(GO) clean ./...
	rm -rf bin
