// Package repro is a from-scratch Go reproduction of "An Asymmetric
// Distributed Shared Memory Model for Heterogeneous Parallel Systems"
// (Gelado et al., ASPLOS 2010) — the GMAC runtime — together with the
// simulated heterogeneous machine it runs on and the full evaluation of
// the paper's Section 5.
//
// The public entry points are:
//
//   - package gmac: the ADSM runtime (Table 1 API, coherence protocols,
//     interposed I/O and bulk memory operations);
//   - package machine: the simulated testbed (CPU + MMU + PCIe +
//     accelerator + disk on one virtual clock);
//   - cmd/gmacbench: regenerates every table and figure of the paper.
//
// The root package holds the benchmark harness (bench_test.go): one
// testing.B benchmark per paper table/figure, reporting the measured
// virtual-time metrics alongside the real cost of running the simulation.
package repro
