package repro

// One testing.B benchmark per table/figure of the paper's evaluation.
// Virtual-time results (what the paper's figures plot) are exposed as
// custom benchmark metrics; wall-clock ns/op measures the simulator
// itself. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benches run at reduced scale so a full -bench=. sweep stays
// in CI territory; cmd/gmacbench runs the evaluation-scale versions.

import (
	"fmt"
	"testing"

	"repro/gmac"
	"repro/internal/figures"
	"repro/internal/workloads"
	"repro/machine"
)

func reportVariant(b *testing.B, rep workloads.Report, prefix string) {
	b.ReportMetric(rep.Time.Seconds()*1e3, prefix+"-vms")
	b.ReportMetric(float64(rep.GMAC.BytesH2D)/1024, prefix+"-h2dKB")
	b.ReportMetric(float64(rep.GMAC.BytesD2H)/1024, prefix+"-d2hKB")
	// Transfer counts, not just bytes: eviction coalescing batches adjacent
	// dirty blocks into single DMA transfers, so the same h2dKB moving in
	// fewer transfers is the optimisation showing up.
	b.ReportMetric(float64(rep.GMAC.TransfersH2D), prefix+"-h2dxfers")
	b.ReportMetric(float64(rep.GMAC.TransfersD2H), prefix+"-d2hxfers")
	if rep.GMAC.Evictions > 0 {
		b.ReportMetric(float64(rep.GMAC.Evictions), prefix+"-evictions")
	}
}

// BenchmarkFig2 regenerates the analytic bandwidth-requirements table.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := figures.Fig2(); len(tab.Rows) != 5 {
			b.Fatal("fig2 incomplete")
		}
	}
}

// BenchmarkTable2 regenerates the benchmark-description table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := figures.Table2(); len(tab.Rows) != 7 {
			b.Fatal("table2 incomplete")
		}
	}
}

// BenchmarkPorting regenerates the porting-effort analysis.
func BenchmarkPorting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Porting()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatal("porting incomplete")
		}
	}
}

// benchParboil runs one Parboil benchmark under one variant at test scale
// and reports its virtual time.
func benchParboil(b *testing.B, mk func() workloads.Benchmark, variant workloads.Variant) {
	opt := workloads.Options{BlockSize: 16 << 10}
	opt.Machine = func() *machine.Machine {
		cfg := machine.PaperTestbedConfig()
		cfg.Accelerators[0].MemSize = 128 << 20
		m, err := machine.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	switch variant {
	case workloads.VariantBatch:
		opt.Protocol = gmac.BatchUpdate
	case workloads.VariantLazy:
		opt.Protocol = gmac.LazyUpdate
	case workloads.VariantRolling:
		opt.Protocol = gmac.RollingUpdate
	}
	var last workloads.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rep workloads.Report
		var err error
		if variant == workloads.VariantCUDA {
			rep, err = workloads.RunCUDA(mk(), opt)
		} else {
			rep, err = workloads.RunGMAC(mk(), opt)
		}
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	b.StopTimer()
	reportVariant(b, last, "virt")
}

// BenchmarkFig7 covers the slowdown comparison: every Parboil benchmark
// under the CUDA baseline and the three protocols (Figures 7 and 8 come
// from the same runs; Figure 10 from the rolling breakdowns).
func BenchmarkFig7(b *testing.B) {
	mks := map[string]func() workloads.Benchmark{
		"cp":      func() workloads.Benchmark { return workloads.SmallCP() },
		"mri-fhd": func() workloads.Benchmark { return workloads.SmallMRIFHD() },
		"mri-q":   func() workloads.Benchmark { return workloads.SmallMRIQ() },
		"pns":     func() workloads.Benchmark { return workloads.SmallPNS() },
		"rpes":    func() workloads.Benchmark { return workloads.SmallRPES() },
		"sad":     func() workloads.Benchmark { return workloads.SmallSAD() },
		"tpacf":   func() workloads.Benchmark { return workloads.SmallTPACF() },
	}
	for _, name := range []string{"cp", "mri-fhd", "mri-q", "pns", "rpes", "sad", "tpacf"} {
		mk := mks[name]
		for _, variant := range []workloads.Variant{
			workloads.VariantCUDA, workloads.VariantBatch,
			workloads.VariantLazy, workloads.VariantRolling,
		} {
			b.Run(name+"/"+string(variant), func(b *testing.B) {
				benchParboil(b, mk, variant)
			})
		}
	}
}

// BenchmarkFig8 isolates the transfer-volume comparison on the benchmark
// where it is starkest (pns: batch re-sends everything every step).
func BenchmarkFig8(b *testing.B) {
	for _, variant := range []workloads.Variant{
		workloads.VariantBatch, workloads.VariantLazy, workloads.VariantRolling,
	} {
		b.Run(string(variant), func(b *testing.B) {
			benchParboil(b, func() workloads.Benchmark { return workloads.SmallPNS() }, variant)
		})
	}
}

// BenchmarkFig9 runs the 3D-stencil volume sweep at reduced scale.
func BenchmarkFig9(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		opt   workloads.Options
		block int64
	}{
		{"lazy", workloads.Options{Protocol: gmac.LazyUpdate}, 0},
		{"rolling-4KB", workloads.Options{Protocol: gmac.RollingUpdate, BlockSize: 4 << 10}, 4 << 10},
		{"rolling-256KB", workloads.Options{Protocol: gmac.RollingUpdate, BlockSize: 256 << 10}, 256 << 10},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var last workloads.Report
			for i := 0; i < b.N; i++ {
				rep, err := workloads.RunGMAC(
					&workloads.Stencil3D{N: 48, Iters: 8, OutEvery: 8, SourceElems: 16}, cfg.opt)
				if err != nil {
					b.Fatal(err)
				}
				last = rep
			}
			b.StopTimer()
			reportVariant(b, last, "virt")
		})
	}
}

// BenchmarkFig10 runs one I/O-heavy benchmark under rolling-update and
// reports the breakdown shares the figure plots.
func BenchmarkFig10(b *testing.B) {
	var last workloads.Report
	for i := 0; i < b.N; i++ {
		rep, err := workloads.RunGMAC(workloads.SmallMRIQ(), workloads.Options{
			Protocol: gmac.RollingUpdate, BlockSize: 16 << 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	b.StopTimer()
	b.ReportMetric(100*last.Breakdown.Fraction("IORead"), "ioread-pct")
	b.ReportMetric(100*last.Breakdown.Fraction("Signal"), "signal-pct")
	b.ReportMetric(100*last.Breakdown.Fraction("GPU"), "gpu-pct")
}

// BenchmarkFig11 sweeps three block sizes of the vector-addition
// micro-benchmark and reports the transfer-time metrics.
func BenchmarkFig11(b *testing.B) {
	for _, bs := range []int64{4 << 10, 64 << 10, 1 << 20} {
		bs := bs
		b.Run(humanBlock(bs), func(b *testing.B) {
			var rows []figures.Fig11Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = figures.Fig11(256<<10, []int64{bs})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(rows[0].CPUToGPU.Seconds()*1e3, "h2d-vms")
			b.ReportMetric(rows[0].GPUToCPU.Seconds()*1e3, "d2h-vms")
			b.ReportMetric(float64(rows[0].Faults), "faults")
		})
	}
}

// BenchmarkFig12 runs the tpacf rolling-size pathology at reduced scale.
func BenchmarkFig12(b *testing.B) {
	bench := workloads.SmallTPACF()
	bench.Points = 16 << 10
	bench.Sets = 2
	for _, rs := range []int{1, 4} {
		rs := rs
		b.Run("rolling-"+string(rune('0'+rs)), func(b *testing.B) {
			var rows []figures.Fig12Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = figures.Fig12(bench, []int64{32 << 10}, []int{rs})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(rows[0].Time.Seconds()*1e3, "virt-vms")
			b.ReportMetric(float64(rows[0].BytesH2D)/1024, "h2dKB")
		})
	}
}

func humanBlock(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dMB", n>>20)
	}
	return fmt.Sprintf("%dKB", n>>10)
}

// BenchmarkAblationAnnotations measures the §4.3 write-set annotation
// extension.
func BenchmarkAblationAnnotations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.AblationAnnotations(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPeerDMA measures the §7 peer-DMA extension on mri-q.
func BenchmarkAblationPeerDMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.AblationPeerDMA(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationVirtualMemory measures the §4.2 device-MMU extension.
func BenchmarkAblationVirtualMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.AblationVirtualMemory(); err != nil {
			b.Fatal(err)
		}
	}
}
